open Repro_order
open Repro_model
open Ids
module Sink = Repro_obs.Sink
module Metrics = Repro_obs.Metrics
module Clock = Repro_obs.Clock
module Json = Repro_obs.Json
module Labels = Repro_obs.Labels
module Recorder = Repro_obs.Recorder
module Span = Repro_obs.Span

type verdict = Accepted of id list | Rejected of Reduction.failure

(* One certified snapshot.  [cert] and [prov] are the lazily materialized
   forensic extensions of the verdict: the incremental paths carry the
   verdict without a reduction transcript, and nothing on the accept path
   needs provenance, so both are derived on first demand — over the frame's
   already-warm relations — and cached here. *)
type frame = {
  h : History.t;
  rel : Observed.relations;
  levels : int array; (* per-schedule levels; fast path requires them stable *)
  verdict : verdict;
  n_obs : int; (* |rel.obs|, carried so per-append gauges skip the O(pairs)
                  cardinal *)
  n_inp : int; (* |rel.inp| *)
  mutable cert : Reduction.certificate option;
  mutable prov : Provenance.t option;
}

(* The session's standing incremental order structures (built lazily, see
   [kernel_build]): one Pearce–Kelly graph per front level for the
   conflict-consistency checks and one per reduction step for the cluster
   quotients, plus the cached serial witness of the final front.  Edges
   are only ever added — relations only grow under the extension
   contract — and the whole value is dropped on {!undo}, on a level
   shift, and on a rejection (sticky from there under stable levels). *)
type kernel = {
  k_order : int;
  cc : Increl.t array;
      (* [cc.(lvl)]: the level-[lvl] front's constraint graph obs ∪ inp
         over the dense node universe; non-members stay isolated. *)
  quot : Increl.t array;
      (* [quot.(lvl)], lvl >= 1: the step-[lvl] cluster quotient of the
         layout constraints.  Slot 0 is unused. *)
  mutable roots_rev : id list; (* every root, newest first *)
  mutable n_roots : int;
  mutable serial : id list; (* cached witness order of [roots_rev] *)
  mutable serial_edges : int;
      (* [Increl.n_edges cc.(k_order)] when [serial] was sorted; -1 when
         no witness is cached.  Keys only move when that graph gains an
         edge, so an unchanged count means the cached witness is still a
         valid linear extension and an accepting append allocates no new
         one. *)
  mutable serial_roots : int; (* [n_roots] when [serial] was cached *)
}

type summary = {
  s_nodes : int; (* the fold point: every node below it is folded *)
  s_roots : int;
  s_serial : id list; (* the certified serial witness at the fold *)
  s_front_sizes : int array; (* per-level front cardinality at the fold *)
  s_boundary_obs : (id * id) list;
      (* observed pairs crossing the previous fold point — the seam
         between the previously folded region and this window *)
}

type t = {
  obs : Sink.t;
  mutable cur : frame option;
  mutable snapshot : frame option option;
      (* [Some s]: state before the last advance, available to [undo].
         [None]: no undo available. *)
  inc : Observed.inc; (* dense closure mirror, reused across appends *)
  mutable kernel : kernel option;
  mutable floor : int;
      (* nodes below this are folded: their dense per-node state (closure
         pairs, memo rows, arena rows, provenance) was released by
         {!truncate} and the frame's relations cover the window only.
         0 = untruncated.  The kernel is never kept while folded. *)
  mutable summary : summary option; (* the immutable fold record *)
  window : int option; (* auto-truncation watermark, in window nodes *)
  mutable eff_window : int;
      (* current watermark: starts at [window] and doubles (capped at 8x)
         every time a breach forces a restore, so a stream whose appends
         keep reaching into the fold stops thrashing fold/restore *)
  mutable truncations : int;
  mutable restores : int;
  mutable appends : int;
  mutable fastpath_hits : int;
  mutable delta_hits : int;
  mutable kernel_hits : int;
  mutable gc0 : Gc.stat;
      (* Gc.quick_stat at session creation: the baseline the introspection
         report's allocation deltas are measured against. *)
}

type stats = {
  appends : int;
  fastpath_hits : int;
  delta_hits : int;
  kernel_hits : int;
}

type explanation = {
  certificate : Reduction.certificate;
  provenance : Provenance.t option;
  cycle_edges : ((id * id) * Reduction.edge) list;
}

let create ?(obs = Sink.null) ?window () =
  (match window with
  | Some w when w <= 0 ->
    invalid_arg "Engine.create: window must be positive"
  | _ -> ());
  {
    obs;
    cur = None;
    snapshot = None;
    inc = Observed.inc_create ();
    kernel = None;
    floor = 0;
    summary = None;
    window;
    eff_window = (match window with Some w -> w | None -> max_int);
    truncations = 0;
    restores = 0;
    appends = 0;
    fastpath_hits = 0;
    delta_hits = 0;
    kernel_hits = 0;
    gc0 = Gc.quick_stat ();
  }

let sink t = t.obs

let levels_of h =
  Array.init (History.n_schedules h) (fun s -> History.level h s)

let verdict_of_certificate (c : Reduction.certificate) =
  match c.Reduction.outcome with
  | Ok serial -> Accepted serial
  | Error f -> Rejected f

(* The verdict can be carried unchanged when, relative to the previous
   snapshot:
   - the observed and input orders are unchanged (both only grow under
     extension, so an empty difference is relation equality);
   - every schedule kept its level — front membership and cluster maps
     group nodes by level, so a level shift regroups old nodes;
   - every new node hangs under a new node (or is a root): old
     transactions then keep their intra orders, and new front members
     touch no observed/input pair, so they enter every constraint graph
     as isolated nodes;
   - each new transaction's own weak intra order is acyclic (the only
     edges a new, order-isolated subtree contributes to the Def. 14
     feasibility check).
   Under these conditions an accepting run stays accepting (isolated
   nodes extend every topological order) and a rejecting run's witness
   cycle — built from relations that did not shrink, over groupings that
   did not move — is still a cycle. *)
let fast_path_ok cur h =
  let n_old = History.n_nodes cur.h in
  let n_new = History.n_nodes h in
  let ok = ref true in
  (try
     for i = n_old to n_new - 1 do
       if
         History.children h i <> []
         && not (Rel.is_acyclic (History.node h i).History.intra_weak)
       then raise Exit
     done
   with Exit -> ok := false);
  !ok

(* Every new node must hang under a new node or be a root: old
   transactions then keep their children (shared nodes keep parents), so
   their intra graphs, front membership and cluster assignments are all
   unchanged by the extension. *)
let structure_ok cur h =
  let n_old = History.n_nodes cur.h in
  let n_new = History.n_nodes h in
  let ok = ref true in
  (try
     for i = n_old to n_new - 1 do
       match History.parent h i with
       | Some p when p < n_old -> raise Exit
       | _ -> ()
     done
   with Exit -> ok := false);
  !ok

(* [forward n_old delta]: every pair the extension added points {e into}
   the new block (target identifier at or above [n_old]; the source may be
   old — logs and sessions only append, so old operations precede new
   ones).  Then each front's constraint graph is block upper-triangular:
   edges run old→old (unchanged), old→new and new→new, never new→old.  A
   cycle cannot mix blocks — to re-enter the old block it would need a
   new→old edge — so it lies entirely in the old block (impossible when
   the previous verdict was [Accepted]: old relations, conflict status of
   old pairs, levels and groupings are all unchanged) or entirely in the
   new one.  The same argument applies per transaction to the Def. 14
   feasibility graphs and, contracted, to the cluster quotients. *)
let forward n_old pairs = List.for_all (fun ((_, b) : id * id) -> b >= n_old) pairs

exception Fail of Reduction.failure

(* ------------------------------------------------------------------ *)
(* The incremental order kernel                                        *)
(* ------------------------------------------------------------------ *)

(* Front membership as a key range (cf. {!Front.members_at}): node [v]
   sits on the level-[i] front iff [node_lo v <= i <= node_hi v].  Levels
   are stable on every kernel-fed path, so old nodes' ranges never
   move. *)
let node_lo h v = History.level_of_node h v

let node_hi h ~order v =
  match History.parent h v with
  | None -> order
  | Some p -> History.level_of_node h p - 1

(* The step-[lvl] cluster map: operations of level-[lvl] transactions
   stand for their transaction, every other front member for itself (cf.
   {!Reduction.reduce_step}). *)
let cls_at h lvl v =
  match History.parent h v with
  | Some p when History.level_of_node h p = lvl -> p
  | _ -> v

let kernel_sync k h =
  let n = History.n_nodes h in
  Array.iter (fun g -> Increl.ensure_nodes g n) k.cc;
  for lvl = 1 to k.k_order do
    Increl.ensure_nodes k.quot.(lvl) n
  done

(* Feed one pair: a constraint-graph edge at every front level where both
   endpoints are members, and — when the pair is a layout constraint
   (input pair, or observed pair that is a generalized conflict; both
   facts are static once the pair exists, so deciding them at feed time
   is final) — a quotient edge at every step where the endpoints sit in
   distinct clusters.  A constraint landing {e inside} one cluster
   changes that transaction's Def. 14 feasibility graph instead: [dirty]
   receives it for an explicit re-check. *)
let kernel_feed_pair k h ~is_constraint ~dirty a b =
  let order = k.k_order in
  let la = node_lo h a and ha = node_hi h ~order a in
  let lb = node_lo h b and hb = node_hi h ~order b in
  let lo = max la lb and hi = min ha hb in
  for lvl = lo to hi do
    Increl.add_edge k.cc.(lvl) a b
  done;
  if is_constraint then
    for lvl = max 1 (lo + 1) to min order (hi + 1) do
      let ca = cls_at h lvl a and cb = cls_at h lvl b in
      if ca <> cb then Increl.add_edge k.quot.(lvl) ca cb
      else if ca <> a || cb <> b then dirty lvl ca
    done

let kernel_nothing_dirty _ _ = ()

(* Feed an append's exact relation delta (and register its new roots).
   O(|delta| x order) plus the affected-region work of the reorders. *)
let kernel_feed k h (rel : Observed.relations) ~n_old ~dirty
    (delta : Observed.delta) =
  kernel_sync k h;
  for v = n_old to History.n_nodes h - 1 do
    if History.parent h v = None then begin
      k.roots_rev <- v :: k.roots_rev;
      k.n_roots <- k.n_roots + 1
    end
  done;
  List.iter
    (fun (a, b) ->
      kernel_feed_pair k h
        ~is_constraint:(Observed.conflict h rel a b)
        ~dirty a b)
    delta.Observed.d_obs;
  List.iter
    (fun (a, b) -> kernel_feed_pair k h ~is_constraint:true ~dirty a b)
    delta.Observed.d_inp

(* Build the kernel from a frame's full relations: the one-time
   O(|relations| x order) cost paid on the first append that needs it. *)
let kernel_build h (rel : Observed.relations) =
  let order = History.order h in
  let n = History.n_nodes h in
  let k =
    {
      k_order = order;
      cc = Array.init (order + 1) (fun _ -> Increl.create ~capacity:n ());
      quot = Array.init (order + 1) (fun _ -> Increl.create ~capacity:n ());
      roots_rev = List.rev (History.roots h);
      n_roots = List.length (History.roots h);
      serial = [];
      serial_edges = -1;
      serial_roots = 0;
    }
  in
  kernel_sync k h;
  Rel.iter
    (fun a b ->
      kernel_feed_pair k h
        ~is_constraint:(Observed.conflict h rel a b)
        ~dirty:kernel_nothing_dirty a b)
    rel.Observed.obs;
  Rel.iter
    (fun a b ->
      kernel_feed_pair k h ~is_constraint:true ~dirty:kernel_nothing_dirty a b)
    rel.Observed.inp;
  k

(* Def. 14 feasibility of one transaction, re-checked from scratch: its
   weak intra order joined with the layout constraints among its
   operations.  Transactions are small, so the |ops|² membership probes
   are the cheap direction (cf. the [local_constraints] note in
   {!Reduction}). *)
let recheck_tx h (rel : Observed.relations) lvl t =
  let ops = History.children h t in
  let b = Bitrel.create (Int_set.of_list ops) in
  Rel.iter
    (fun x y -> Bitrel.add b x y)
    (History.node h t).History.intra_weak;
  List.iter
    (fun x ->
      List.iter
        (fun y ->
          if
            Rel.mem x y rel.Observed.inp
            || (Rel.mem x y rel.Observed.obs && Observed.conflict h rel x y)
          then Bitrel.add b x y)
        ops)
    ops;
  match Bitrel.find_cycle b with
  | Some cycle ->
    raise (Fail (Reduction.Intra_contradiction { level = lvl; tx = t; cycle }))
  | None -> ()

(* Decide the append from the kernel state, mirroring {!Reduction.reduce}'s
   check order: front-0 consistency, then per step the perturbed
   transactions' feasibility, the cluster quotient and the next front.
   Acyclicity is an O(1) flag per graph, and the previous verdict accepted
   every graph this append did not touch, so only the fed edges and the
   [dirty] transactions can flip the answer. *)
let kernel_verdict k h rel ~dirty =
  let cycle_exn g =
    match Increl.find_cycle g with Some c -> c | None -> assert false
  in
  try
    if not (Increl.acyclic k.cc.(0)) then
      raise
        (Fail (Reduction.Front_not_cc { index = 0; cycle = cycle_exn k.cc.(0) }));
    for lvl = 1 to k.k_order do
      Hashtbl.iter (fun t l -> if l = lvl then recheck_tx h rel lvl t) dirty;
      if not (Increl.acyclic k.quot.(lvl)) then
        raise
          (Fail
             (Reduction.No_calculation
                { level = lvl; cluster_cycle = cycle_exn k.quot.(lvl) }));
      if not (Increl.acyclic k.cc.(lvl)) then
        raise
          (Fail
             (Reduction.Front_not_cc
                { index = lvl; cycle = cycle_exn k.cc.(lvl) }))
    done;
    (* Accepted.  The final front holds exactly the roots (only they keep
       membership up to the top level), so the maintained keys of its
       constraint graph sort them into a witness; the sort — and its
       allocation — is skipped while that graph gains no edge. *)
    let g = k.cc.(k.k_order) in
    let e = Increl.n_edges g in
    if e <> k.serial_edges then begin
      k.serial <-
        List.sort
          (fun a b -> compare (Increl.pos g a) (Increl.pos g b))
          k.roots_rev;
      k.serial_edges <- e;
      k.serial_roots <- k.n_roots
    end
    else if k.serial_roots <> k.n_roots then begin
      (* Roots that arrived while the graph stayed still are isolated and
         keyed after every older node: appending them preserves the
         extension property. *)
      let fresh = ref [] in
      let rec take i = function
        | v :: rest when i > 0 ->
          fresh := v :: !fresh;
          take (i - 1) rest
        | _ -> ()
      in
      take (k.n_roots - k.serial_roots) k.roots_rev;
      k.serial <- k.serial @ !fresh;
      k.serial_roots <- k.n_roots
    end;
    Ok k.serial
  with Fail f -> Error f

(* Re-run the reduction on the new block only: the part of every front,
   feasibility graph and cluster quotient induced by nodes [>= n_old].
   All pairs touching a new node are in the deltas (the previous relations
   range over old nodes only), so [delta_obs]/[delta_inp] restricted to
   new×new are exactly the new blocks of the full relations.  Returns the
   serialization tail contributed by the new roots. *)
let delta_reduce cur (rel : Observed.relations) ~d_obs ~d_inp h =
  let n_old = History.n_nodes cur.h in
  let n_new = History.n_nodes h in
  let order = History.order h in
  let is_new v = v >= n_old in
  let new_pairs ps =
    List.fold_left
      (fun acc (a, b) -> if is_new a && is_new b then Rel.add a b acc else acc)
      Rel.empty ps
  in
  let obs2 = new_pairs d_obs in
  let inp2 = new_pairs d_inp in
  (* Def. 16 step 1 on the new block: input orders plus the observed pairs
     that are generalized conflicts (commuting pairs may be swapped). *)
  let constraints =
    Rel.union inp2 (Rel.filter (fun a b -> Observed.conflict h rel a b) obs2)
  in
  (* Front membership and step transactions of the new block, from the new
     identifiers alone: an O(delta) pass instead of re-scanning the whole
     node array per level. *)
  let members_by_level = Array.make (order + 1) Int_set.empty in
  let txs_by_level = Array.make (order + 1) [] in
  for v = n_new - 1 downto n_old do
    let lo = node_lo h v and hi = node_hi h ~order v in
    for lvl = lo to hi do
      members_by_level.(lvl) <- Int_set.add v members_by_level.(lvl)
    done;
    match History.sched_of_tx h v with
    | Some s ->
      let lvl = History.level h s in
      txs_by_level.(lvl) <- v :: txs_by_level.(lvl)
    | None -> ()
  done;
  let new_members lvl = members_by_level.(lvl) in
  let check_cc index members =
    let b = Bitrel.create members in
    let restrict r =
      Rel.iter
        (fun x y ->
          if Int_set.mem x members && Int_set.mem y members then Bitrel.add b x y)
        r
    in
    restrict obs2;
    restrict inp2;
    match Bitrel.find_cycle b with
    | Some cycle -> raise (Fail (Reduction.Front_not_cc { index; cycle }))
    | None -> ()
  in
  (* Mirrors [Reduction.reduce_step] on the new block: isolate the new
     level-[lvl] transactions inside the new part of the previous front. *)
  let step lvl prev_members =
    let level_txs = txs_by_level.(lvl) in
    let cluster = Hashtbl.create 16 in
    List.iter
      (fun t ->
        List.iter (fun c -> Hashtbl.replace cluster c t) (History.children h t))
      level_txs;
    let cls n = match Hashtbl.find_opt cluster n with Some t -> t | None -> n in
    (* Intra-cluster feasibility (Def. 14) of the new transactions; the old
       ones passed before over identical graphs. *)
    let ops = Int_set.of_list (List.concat_map (History.children h) level_txs) in
    let b = Bitrel.create ops in
    Rel.iter
      (fun x y ->
        match (Hashtbl.find_opt cluster x, Hashtbl.find_opt cluster y) with
        | Some t1, Some t2 when t1 = t2 -> Bitrel.add b x y
        | _ -> ())
      constraints;
    List.iter
      (fun t ->
        Rel.iter (fun x y -> Bitrel.add b x y) (History.node h t).History.intra_weak)
      level_txs;
    (match Bitrel.find_cycle b with
    | Some cycle ->
      raise
        (Fail
           (Reduction.Intra_contradiction
              { level = lvl; tx = History.parent_tx h (List.hd cycle); cycle }))
    | None -> ());
    (* Cluster quotient over the new part of the previous front.  Edges
       between new clusters can only come from new×new constraint pairs
       (children of new transactions are new), so [constraints] is
       complete here. *)
    let cluster_universe =
      Int_set.fold (fun v acc -> Int_set.add (cls v) acc) prev_members
        Int_set.empty
    in
    let quotient = Bitrel.create cluster_universe in
    Rel.iter
      (fun x y ->
        if Int_set.mem x prev_members && Int_set.mem y prev_members then begin
          let cx = cls x and cy = cls y in
          if cx <> cy then Bitrel.add quotient cx cy
        end)
      constraints;
    match Bitrel.find_cycle quotient with
    | Some cycle ->
      raise (Fail (Reduction.No_calculation { level = lvl; cluster_cycle = cycle }))
    | None -> ()
  in
  try
    let members = ref (new_members 0) in
    check_cc 0 !members;
    for lvl = 1 to order do
      step lvl !members;
      members := new_members lvl;
      check_cc lvl !members
    done;
    (* The final new front passed its CC check, so its constraint graph —
       [obs2 ∪ inp2] restricted to it — is acyclic. *)
    let graph =
      Rel.filter
        (fun x y -> Int_set.mem x !members && Int_set.mem y !members)
        (Rel.union obs2 inp2)
    in
    match Rel.topo_sort ~nodes:!members graph with
    | Some tail -> Ok tail
    | None -> assert false
  with Fail f -> Error f

(* ------------------------------------------------------------------ *)
(* Frontier truncation                                                 *)
(* ------------------------------------------------------------------ *)

(* Rebuild the exact dense state of a truncated session in place: the
   frame's full relations are recomputed from its (complete) history and
   the floor drops to 0.  The carried verdict is untouched — windowed
   verdicts are exact (see the truncation invariants in DESIGN.md §14) —
   so nothing is re-decided; only the derived dense state is
   re-materialized.  Paid on the rare appends the window cannot decide
   (level shifts, appends into old transactions, backward edges, probes
   into the folded region) and on forensic demands against a truncated
   frame. *)
let restore t =
  match t.cur with
  | Some f when t.floor > 0 ->
    let metrics = t.obs.Sink.metrics in
    let rel = Observed.compute ~metrics f.h in
    t.cur <-
      Some
        {
          f with
          rel;
          n_obs = Rel.cardinal rel.Observed.obs;
          n_inp = Rel.cardinal rel.Observed.inp;
          cert = None;
          prov = None;
        };
    t.floor <- 0;
    t.summary <- None;
    t.snapshot <- None;
    t.kernel <- None;
    Observed.inc_rebase t.inc ~floor:0;
    t.restores <- t.restores + 1;
    (* Back off the watermark: a stream whose appends keep reaching into
       the fold would otherwise thrash truncate/restore. *)
    (match t.window with
    | Some w -> t.eff_window <- min (2 * t.eff_window) (8 * w)
    | None -> ());
    Metrics.incr metrics "engine.restores";
    if Recorder.enabled t.obs.Sink.recorder then
      Recorder.record t.obs.Sink.recorder ~severity:Recorder.Warn
        ~cat:"engine"
        ~labels:(Labels.v [ ("nodes", string_of_int (History.n_nodes f.h)) ])
        "restore"
  | _ -> ()

(* Fold the certified prefix into an immutable summary and release the
   dense per-node state: the frame keeps its history and verdict (the
   serial witness is part of the summary and of every later Accepted
   verdict), but the closure relations are emptied, the conflict memo's
   planes are dropped ({!History.memo_release}), the dense mirror rebases
   onto the (initially empty) window and gives its Bigarray store back,
   and the kernel, snapshot, certificate and provenance index are
   released.  Session memory is O(active window) from here until a
   restore.  Idempotent: folding at an unchanged node count is a no-op.
   Only an accepted prefix can be folded — a rejection's witness lives in
   the dense state that truncation releases. *)
let truncate t =
  match t.cur with
  | None -> ()
  | Some f ->
    let n = History.n_nodes f.h in
    if n > t.floor then begin
      match f.verdict with
      | Rejected _ ->
        invalid_arg
          "Engine.truncate: only an accepted (certified) prefix can be folded"
      | Accepted serial ->
        let metrics = t.obs.Sink.metrics in
        let order = History.order f.h in
        let fronts =
          Array.init (order + 1) (fun l ->
              Int_set.cardinal (Front.members_at f.h l))
        in
        let prev_floor = t.floor in
        let boundary =
          List.rev
            (Rel.fold
               (fun a b acc ->
                 if a < prev_floor && b >= prev_floor then (a, b) :: acc
                 else acc)
               f.rel.Observed.obs [])
        in
        t.summary <-
          Some
            {
              s_nodes = n;
              s_roots = List.length (History.roots f.h);
              s_serial = serial;
              s_front_sizes = fronts;
              s_boundary_obs = boundary;
            };
        t.cur <-
          Some
            {
              f with
              rel =
                {
                  Observed.obs = Rel.empty;
                  inp = Rel.empty;
                  inp_strong = Rel.empty;
                };
              n_obs = 0;
              n_inp = 0;
              cert = None;
              prov = None;
            };
        History.memo_release f.h;
        Observed.inc_rebase t.inc ~floor:n;
        t.kernel <- None;
        t.snapshot <- None;
        t.floor <- n;
        t.truncations <- t.truncations + 1;
        Metrics.incr metrics "engine.truncations";
        Metrics.set metrics "engine.floor" (float_of_int n);
        if Recorder.enabled t.obs.Sink.recorder then
          Recorder.record t.obs.Sink.recorder ~severity:Recorder.Info
            ~cat:"engine"
            ~labels:
              (Labels.v
                 [
                   ("nodes", string_of_int n);
                   ("roots", string_of_int (List.length (History.roots f.h)));
                 ])
            "truncate"
    end

let summary t = t.summary

let floor t = t.floor

let truncations t = t.truncations

let restores t = t.restores

(* Advance the session to [h].  [monitor] selects the metric vocabulary:
   the monitor-facing [extend] reports [monitor.appends] and
   [monitor.append_wall_s]; the batch-facing [analyze] wraps this call in
   the [compc.checks]/[compc.check_wall_s] vocabulary instead. *)
let advance ~monitor t h =
  let metrics = t.obs.Sink.metrics in
  let recorder = t.obs.Sink.recorder in
  let enabled = monitor && Metrics.enabled metrics in
  let recording = Recorder.enabled recorder in
  let spans = t.obs.Sink.spans in
  (* The engine traces itself only inside a request: the caller (server
     shard, monitor CLI) sets the collector's ambient context around the
     call, and the head-sampling decision rides the context's trace id. *)
  let tracing = Span.sampled spans (Span.ctx_trace spans) in
  let t0 =
    if enabled || recording || tracing then Clock.now_wall () else 0.0
  in
  (* Which append machinery decided this advance; the flight recorder and
     the labeled [monitor.append{path=...}] counter both report it. *)
  let path = ref "full" in
  let frame =
    match t.cur with
    | None ->
      path := "initial";
      let rel = Observed.compute ~metrics h in
      let certificate =
        Reduction.reduce ~rel ~trace:t.obs.Sink.trace ~metrics h
      in
      {
        h;
        rel;
        levels = levels_of h;
        verdict = verdict_of_certificate certificate;
        n_obs = Rel.cardinal rel.Observed.obs;
        n_inp = Rel.cardinal rel.Observed.inp;
        cert = Some certificate;
        prov = None;
      }
    | Some cur0 ->
      (* A truncated session (floor > 0) decides the streaming-shaped
         appends over the window alone; any other shape — a level shift,
         an operation appended into an old transaction, a backward edge,
         or a derived pair reaching into the folded region
         ([Below_floor]) — restores the exact dense state first and
         re-decides.  At most one retry: restore drops the floor to 0.
         Windowed verdicts are exact (DESIGN.md §14), so a restore never
         changes an already-carried verdict. *)
      let rec decide cur =
        let n_old = History.n_nodes cur.h in
        let structure = structure_ok cur h in
        (* The memo's id-ordered ranks are stable under every extension —
           including operations appended to old transactions — so the
           transfer is unconditional, and along the streaming chain it
           lends the previous snapshot's arrays instead of copying them. *)
        History.extend_cache ~from:cur.h h;
        match Observed.extend ~metrics ~inc:t.inc ~prev:cur.rel ~n_old h with
        | exception Observed.Below_floor _ ->
          restore t;
          decide (match t.cur with Some f -> f | None -> assert false)
        | rel, delta ->
          let d_obs = delta.Observed.d_obs and d_inp = delta.Observed.d_inp in
          let levels = levels_of h in
          let stable_levels = levels = cur.levels in
          let stable = stable_levels && structure in
          let fast =
            stable && d_obs = [] && d_inp = [] && fast_path_ok cur h
          in
          let fwd = stable && forward n_old d_obs && forward n_old d_inp in
          if (not (fast || fwd)) && t.floor > 0 then begin
            restore t;
            decide (match t.cur with Some f -> f | None -> assert false)
          end
          else begin
          let verdict, cert =
            if fast then begin
          path := "fast";
          t.fastpath_hits <- t.fastpath_hits + 1;
          Metrics.incr metrics "monitor.fastpath_hits";
          (* Keep a standing kernel in step (new nodes, new roots; no
             edges to feed). *)
          (match t.kernel with
          | Some k ->
            kernel_feed k h rel ~n_old ~dirty:kernel_nothing_dirty delta
          | None -> ());
          match cur.verdict with
          | Rejected _ as r -> (r, None)
          | Accepted serial ->
            (* New roots are order-isolated on this path; appending them
               in ascending id order is a valid linear extension. *)
            let delta_roots = ref [] in
            for v = History.n_nodes h - 1 downto n_old do
              if History.parent h v = None then
                delta_roots := v :: !delta_roots
            done;
            (Accepted (serial @ !delta_roots), None)
        end
            else if fwd then begin
          path := "delta";
          t.delta_hits <- t.delta_hits + 1;
          Metrics.incr metrics "monitor.delta_hits";
          (* Dirty marks can only name new transactions here (an
             intra-cluster constraint needs a new-id target under a
             common parent, and [structure] holds), and the new block's
             feasibility is delta_reduce's to check. *)
          (match t.kernel with
          | Some k ->
            kernel_feed k h rel ~n_old ~dirty:kernel_nothing_dirty delta
          | None -> ());
          match cur.verdict with
          | Rejected _ as r ->
            (* The old block — relations, conflict status, groupings — is
               untouched, so the witness cycle survives the extension. *)
            (r, None)
          | Accepted serial -> (
            match delta_reduce cur rel ~d_obs ~d_inp h with
            | Ok tail ->
              (* Old→new edges are consistent with every old-before-new
                 interleaving, so concatenation is a linear extension of
                 the full final front. *)
              (Accepted (serial @ tail), None)
            | Error f -> (Rejected f, None))
        end
        else if stable_levels then begin
          (* The genuine fallback rescued by the kernel: levels stable but
             an edge landed inside the old block (or an operation under an
             old transaction).  Old nodes keep their front memberships and
             cluster maps, so the delta perturbs exactly the graphs its
             edges land in — feed them and read the acyclicity flags. *)
          path := "kernel";
          t.kernel_hits <- t.kernel_hits + 1;
          Metrics.incr metrics "monitor.kernel_hits";
          match cur.verdict with
          | Rejected _ as r ->
            (* Relations only grow and old groupings stand still, so the
               witness survives; no kernel needed while rejected. *)
            (r, None)
          | Accepted _ ->
            let k =
              match t.kernel with
              | Some k -> k
              | None ->
                (* First fallback of the session: build from the previous
                   frame — the state the verdict being extended was
                   accepted on — then feed this append's delta like any
                   other. *)
                let k = kernel_build cur.h cur.rel in
                t.kernel <- Some k;
                k
            in
            let dirty = Hashtbl.create 8 in
            let mark lvl tx =
              if not (Hashtbl.mem dirty tx) then Hashtbl.add dirty tx lvl
            in
            (* Transactions whose Def. 14 graph changed shape: old parents
               that gained operations, and brand-new transactions (never
               checked before). *)
            for v = History.n_nodes h - 1 downto n_old do
              (match History.parent h v with
              | Some p when p < n_old -> mark (History.level_of_node h p) p
              | _ -> ());
              if History.children h v <> [] then
                mark (History.level_of_node h v) v
            done;
            kernel_feed k h rel ~n_old ~dirty:mark delta;
            (match kernel_verdict k h rel ~dirty with
            | Ok serial -> (Accepted serial, None)
            | Error f -> (Rejected f, None))
        end
            else begin
              path := "full";
              t.kernel <- None;
              let c =
                Reduction.reduce ~rel ~trace:t.obs.Sink.trace ~metrics h
              in
              (verdict_of_certificate c, Some c)
            end
          in
          (match verdict with
          | Rejected _ -> t.kernel <- None
          | Accepted _ -> ());
          {
            h;
            rel;
            levels;
            verdict;
            n_obs = cur.n_obs + List.length d_obs;
            n_inp = cur.n_inp + List.length d_inp;
            cert;
            prov = None;
          }
          end
      in
      decide cur0
  in
  t.snapshot <- Some t.cur;
  t.cur <- Some frame;
  t.appends <- t.appends + 1;
  if enabled then begin
    let wall = Clock.now_wall () -. t0 in
    let labels = Labels.v [ ("path", !path) ] in
    Metrics.incr metrics "monitor.appends";
    Metrics.incr metrics ~labels "monitor.append";
    Metrics.observe metrics "monitor.append_wall_s" wall;
    Metrics.observe metrics ~labels "monitor.append_wall_s_by_path" wall;
    (* The cheap per-append slice of the introspection report, kept live as
       gauges so a scrape of a monitored stream always has current state
       sizes without an explicit [introspect] call. *)
    Metrics.set metrics "engine.nodes" (float_of_int (History.n_nodes frame.h));
    Metrics.set metrics "engine.obs_pairs" (float_of_int frame.n_obs);
    Metrics.set metrics "engine.inp_pairs" (float_of_int frame.n_inp);
    let known, totalp = History.memo_stats frame.h in
    Metrics.set metrics "engine.memo_known_pairs" (float_of_int known);
    Metrics.set metrics "engine.memo_fill_ratio"
      (if totalp = 0 then 0.0 else float_of_int known /. float_of_int totalp)
  end;
  if recording then begin
    let severity, verdict_s =
      match frame.verdict with
      | Accepted _ -> ((if !path = "full" && monitor then Recorder.Warn
                        else Recorder.Info), "accept")
      | Rejected _ -> (Recorder.Error, "reject")
    in
    Recorder.record recorder ~severity ~cat:"engine"
      ~labels:
        (Labels.v
           [
             ("path", !path);
             ("nodes", string_of_int (History.n_nodes frame.h));
             ("verdict", verdict_s);
             ( "wall_us",
               Printf.sprintf "%.1f" ((Clock.now_wall () -. t0) *. 1e6) );
           ])
      (if monitor then "append" else "analyze")
  end;
  if tracing then
    ignore
      (Span.emit spans ~parent:(Span.ctx_parent spans) ~cat:"engine"
         ~labels:
           (Labels.v
              [
                ("path", !path);
                ("nodes", string_of_int (History.n_nodes frame.h));
                ( "clusters",
                  string_of_int (List.length (History.roots frame.h)) );
                ( "verdict",
                  match frame.verdict with
                  | Accepted _ -> "accept"
                  | Rejected _ -> "reject" );
              ])
         ~trace:(Span.ctx_trace spans) ~t0 ~t1:(Clock.now_wall ())
         (if monitor then "engine.append" else "engine.analyze"));
  frame.verdict

(* The auto-truncation watermark, checked before each monitored append:
   once the certified window holds [eff_window] or more nodes, fold it.
   Only an accepted frame folds (a rejection's witness needs the dense
   state), and only sessions created with [?window]. *)
let maybe_truncate t =
  match (t.window, t.cur) with
  | Some _, Some { verdict = Accepted _; h = hh; _ }
    when History.n_nodes hh - t.floor >= t.eff_window ->
    truncate t
  | _ -> ()

let extend t h =
  maybe_truncate t;
  advance ~monitor:true t h

let frame_exn t name =
  match t.cur with
  | Some f -> f
  | None -> invalid_arg ("Engine." ^ name ^ ": session holds no history")

let certificate t =
  restore t;
  let f = frame_exn t "certificate" in
  match f.cert with
  | Some c -> c
  | None ->
    (* The incremental paths carry the verdict without a transcript;
       re-derive one over the warm relations (no closure recompute).  The
       witness may differ in inessentials from the carried verdict's — see
       the monitor's verdict-equivalence note — but the outcome agrees. *)
    let c =
      Reduction.reduce ~rel:f.rel ~trace:t.obs.Sink.trace
        ~metrics:t.obs.Sink.metrics f.h
    in
    f.cert <- Some c;
    c

let analyze t h =
  let metrics = t.obs.Sink.metrics in
  let telemetry = Sink.enabled t.obs in
  let t0w = if telemetry then Clock.now_wall () else 0.0 in
  let t0c = if telemetry then Clock.now_cpu () else 0.0 in
  let v = advance ~monitor:false t h in
  (* Batch semantics: the certificate is part of the answer. *)
  ignore (certificate t);
  if telemetry then begin
    Metrics.incr metrics "compc.checks";
    Metrics.observe metrics "compc.check_wall_s" (Clock.now_wall () -. t0w);
    Metrics.observe metrics "compc.check_cpu_s" (Clock.now_cpu () -. t0c)
  end;
  v

let of_history ?obs h =
  let t = create ?obs () in
  ignore (analyze t h);
  t

let of_parts ?(obs = Sink.null) h rel certificate =
  {
    obs;
    cur =
      Some
        {
          h;
          rel;
          levels = levels_of h;
          verdict = verdict_of_certificate certificate;
          n_obs = Rel.cardinal rel.Observed.obs;
          n_inp = Rel.cardinal rel.Observed.inp;
          cert = Some certificate;
          prov = None;
        };
    snapshot = None;
    inc = Observed.inc_create ();
    kernel = None;
    floor = 0;
    summary = None;
    window = None;
    eff_window = max_int;
    truncations = 0;
    restores = 0;
    appends = 0;
    fastpath_hits = 0;
    delta_hits = 0;
    kernel_hits = 0;
    gc0 = Gc.quick_stat ();
  }

let undo t =
  match t.snapshot with
  | None ->
    if t.floor > 0 then
      (* The pre-truncation state was released with the fold; there is
         nothing exact to roll back to. *)
      invalid_arg "Engine.undo: cannot roll back across a truncation boundary"
    else invalid_arg "Engine.undo: no snapshot held (undo depth is one)"
  | Some s ->
    t.cur <- s;
    t.snapshot <- None;
    (* Rolling back shrinks the relations: both standing incremental
       structures are grow-only mirrors of the advanced state, so drop
       them and let the next append rebuild from the restored frame. *)
    Observed.inc_invalidate t.inc;
    t.kernel <- None

let verdict t = Option.map (fun f -> f.verdict) t.cur

let accepted t =
  match t.cur with
  | None | Some { verdict = Accepted _; _ } -> true
  | Some { verdict = Rejected _; _ } -> false

let history t = Option.map (fun f -> f.h) t.cur

let relations t = Option.map (fun f -> f.rel) t.cur

let obs_pairs t = match t.cur with None -> 0 | Some f -> f.n_obs

let provenance t =
  restore t;
  let f = frame_exn t "provenance" in
  match f.prov with
  | Some p -> p
  | None ->
    let p = Provenance.build f.h f.rel in
    f.prov <- Some p;
    p

let explain t =
  let cert = certificate t in
  let f = frame_exn t "explain" in
  match cert.Reduction.outcome with
  | Ok _ -> { certificate = cert; provenance = None; cycle_edges = [] }
  | Error failure ->
    {
      certificate = cert;
      provenance = Some (provenance t);
      cycle_edges = Reduction.cycle_edges f.h f.rel failure;
    }

let shrink ?max_probes t =
  let f = frame_exn t "shrink" in
  Shrink.shrink ?max_probes f.h

let stats (t : t) =
  {
    appends = t.appends;
    fastpath_hits = t.fastpath_hits;
    delta_hits = t.delta_hits;
    kernel_hits = t.kernel_hits;
  }

(* A counter-based estimate of the session's resident certification
   state, in words: the persistent closure pairs, the conflict-memo
   planes, the dense mirror's Bigarray store (off-heap, invisible to
   [Obj.reachable_words]) and the kernel's adjacency arrays.  Excludes
   the immutable history itself — the estimate tracks the {e dense
   derived} state that frontier truncation bounds, which is what the
   memory-flatness gates watch.  O(1); safe to poll per append. *)
let resident_estimate_words (t : t) =
  match t.cur with
  | None -> 0
  | Some f ->
    let pairs = (f.n_obs + f.n_inp) * 8 in
    let memo = (History.memo_bytes f.h + 7) / 8 in
    let mirror = Observed.inc_resident_words t.inc in
    let kernel =
      match t.kernel with
      | None -> 0
      | Some k ->
        Array.fold_left (fun acc g -> acc + Increl.resident_words g) 0 k.cc
        + Array.fold_left
            (fun acc g -> acc + Increl.resident_words g)
            0 k.quot
    in
    let prov =
      match f.prov with None -> 0 | Some p -> Provenance.cardinal p * 8
    in
    pairs + memo + mirror + kernel + prov

let summary_json = function
  | None -> Json.Null
  | Some s ->
    Json.Obj
      [
        ("nodes", Json.Int s.s_nodes);
        ("roots", Json.Int s.s_roots);
        ("serial_len", Json.Int (List.length s.s_serial));
        ( "front_sizes",
          Json.List
            (Array.to_list (Array.map (fun n -> Json.Int n) s.s_front_sizes))
        );
        ("boundary_obs_pairs", Json.Int (List.length s.s_boundary_obs));
      ]

(* The state report behind `compcheck --stats` and the monitor's evidence
   dumps: what this session is holding in memory and what it cost to get
   here.  [deep] (default true) walks the frame with
   [Obj.reachable_words] — history, relations, memo, certificate,
   provenance index — which costs O(prefix); [~deep:false] substitutes
   the O(1) {!resident_estimate_words}, the polling path. *)
let introspect ?(deep = true) (t : t) =
  let gc = Gc.quick_stat () in
  let session =
    Json.Obj
      [
        ("appends", Json.Int t.appends);
        ("fastpath_hits", Json.Int t.fastpath_hits);
        ("delta_hits", Json.Int t.delta_hits);
        ("kernel_hits", Json.Int t.kernel_hits);
        ("kernel_built", Json.Bool (t.kernel <> None));
        ("undo_available", Json.Bool (t.snapshot <> None));
        ("floor", Json.Int t.floor);
        ("truncations", Json.Int t.truncations);
        ("restores", Json.Int t.restores);
        ( "window",
          match t.window with None -> Json.Null | Some w -> Json.Int w );
      ]
  in
  let gc_json =
    Json.Obj
      [
        ("minor_words_delta", Json.Float (gc.Gc.minor_words -. t.gc0.Gc.minor_words));
        ( "major_words_delta",
          Json.Float (gc.Gc.major_words -. t.gc0.Gc.major_words) );
        ( "minor_collections_delta",
          Json.Int (gc.Gc.minor_collections - t.gc0.Gc.minor_collections) );
        ( "major_collections_delta",
          Json.Int (gc.Gc.major_collections - t.gc0.Gc.major_collections) );
        ("heap_words", Json.Int gc.Gc.heap_words);
      ]
  in
  match t.cur with
  | None ->
    Json.Obj
      [
        ("schema", Json.String "engine-stats/1");
        ("history", Json.Null);
        ("session", session);
        ("summary", summary_json t.summary);
        ("gc", gc_json);
      ]
  | Some f ->
    let known, totalp = History.memo_stats f.h in
    Json.Obj
      [
        ("schema", Json.String "engine-stats/1");
        ( "history",
          Json.Obj
            [
              ("nodes", Json.Int (History.n_nodes f.h));
              ("roots", Json.Int (List.length (History.roots f.h)));
              ("schedules", Json.Int (History.n_schedules f.h));
              ("order", Json.Int (History.order f.h));
            ] );
        ( "closure",
          Json.Obj
            [
              ("obs_pairs", Json.Int (Rel.cardinal f.rel.Observed.obs));
              ("inp_pairs", Json.Int (Rel.cardinal f.rel.Observed.inp));
              ("base_obs_pairs", Json.Int (Rel.cardinal (Observed.base f.h)));
            ] );
        ( "conflict_memo",
          Json.Obj
            [
              ("known_pairs", Json.Int known);
              ("total_pairs", Json.Int totalp);
              ( "fill_ratio",
                Json.Float
                  (if totalp = 0 then 0.0
                   else float_of_int known /. float_of_int totalp) );
            ] );
        ( "provenance",
          match f.prov with
          | None -> Json.Obj [ ("built", Json.Bool false) ]
          | Some p ->
            Json.Obj
              [
                ("built", Json.Bool true);
                ("pairs", Json.Int (Provenance.cardinal p));
              ] );
        ( "certificate",
          Json.Obj [ ("materialized", Json.Bool (f.cert <> None)) ] );
        ("session", session);
        ("summary", summary_json t.summary);
        ( "memory",
          Json.Obj
            (( "resident_estimate_words",
               Json.Int (resident_estimate_words t) )
            ::
            (if deep then
               [
                 ( "reachable_words",
                   Json.Int (Obj.reachable_words (Obj.repr f)) );
               ]
             else [])) );
        ("gc", gc_json);
      ]
