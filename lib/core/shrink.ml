open Repro_order
open Repro_model
open Ids

(* Candidate sub-histories are materialized through the read-only view
   interface: the base history's conflict memo transfers onto each
   restriction, so re-certifying a candidate never re-interprets a label
   pair the session already decided. *)
let restrict h ~keep = History.View.to_history (History.View.make h ~keep)

type result = {
  history : History.t;
  kind : string;
  probes : int;
  dropped_roots : int;
  dropped_nodes : int;
}

let failure_kind_of h =
  match (Reduction.reduce h).Reduction.outcome with
  | Ok _ -> None
  | Error f -> Some (Reduction.failure_kind f)

let subtree h r = Int_set.add r (History.descendants h r)

let keep_of_roots h roots =
  List.fold_left (fun acc r -> Int_set.union acc (subtree h r)) Int_set.empty roots

let all_nodes h =
  Int_set.of_list (List.init (History.n_nodes h) (fun i -> i))

(* Classic ddmin over a list: try removing complement chunks at increasing
   granularity until no chunk can go.  [test] decides whether a {e subset}
   still reproduces; the result is 1-minimal w.r.t. removing any single
   element [test] was allowed to probe within the budget. *)
let ddmin test xs =
  let remove_chunk xs start len =
    List.filteri (fun i _ -> i < start || i >= start + len) xs
  in
  let rec go xs n =
    let len = List.length xs in
    if len <= 1 || n > len then xs
    else begin
      let chunk = (len + n - 1) / n in
      let rec try_chunks start =
        if start >= len then None
        else
          let candidate = remove_chunk xs start (min chunk (len - start)) in
          if candidate <> [] && test candidate then Some candidate
          else try_chunks (start + chunk)
      in
      match try_chunks 0 with
      | Some candidate -> go candidate (max 2 (n - 1))
      | None -> if n >= len then xs else go xs (min len (2 * n))
    end
  in
  go xs 2

let shrink ?(max_probes = 2000) h =
  match failure_kind_of h with
  | None -> None
  | Some kind ->
    let probes = ref 0 in
    let reproduces cand =
      Validate.check cand = [] && failure_kind_of cand = Some kind
    in
    (* Probe a keep-set against the current history; [None] when the budget
       is spent or the candidate loses the failure. *)
    let try_keep cur keep =
      if !probes >= max_probes then None
      else begin
        incr probes;
        let cand = restrict cur ~keep in
        if reproduces cand then Some cand else None
      end
    in
    (* Phase 1 on each round: ddmin over the root list (root ids are stable
       while the base history [cur] is fixed; the survivor set is committed
       once, at the end of the phase). *)
    let ddmin_roots cur =
      let roots = History.roots cur in
      let surviving =
        ddmin
          (fun subset -> try_keep cur (keep_of_roots cur subset) <> None)
          roots
      in
      if List.length surviving = List.length roots then cur
      else restrict cur ~keep:(keep_of_roots cur surviving)
    in
    (* Phase 2: greedy single-subtree drops over non-root nodes.  Each
       commit renumbers ids, so restart the scan on the new history; the
       scan runs high-to-low so freshly declared (deep) nodes go first. *)
    let rec drop_subtrees cur =
      let n = History.n_nodes cur in
      let rec scan v =
        if v < 0 then cur
        else if History.is_root cur v then scan (v - 1)
        else
          match try_keep cur (Int_set.diff (all_nodes cur) (subtree cur v)) with
          | Some cand -> drop_subtrees cand
          | None -> scan (v - 1)
      in
      scan (n - 1)
    in
    (* Alternate until a whole round changes nothing: dropping operations
       can unlock further root drops and vice versa.  At the fixpoint no
       single root subtree and no single node subtree can be removed — the
       1-minimality the caller gets (modulo an exhausted budget). *)
    let rec rounds cur =
      let cur' = drop_subtrees (ddmin_roots cur) in
      if History.n_nodes cur' = History.n_nodes cur || !probes >= max_probes
      then cur'
      else rounds cur'
    in
    let final = rounds h in
    Some
      {
        history = final;
        kind;
        probes = !probes;
        dropped_roots =
          List.length (History.roots h) - List.length (History.roots final);
        dropped_nodes = History.n_nodes h - History.n_nodes final;
      }
