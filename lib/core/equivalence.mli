(** Serial fronts, level-equivalence and level-containment (Defs. 17–20),
    made executable.

    {!Reduction} decides Comp-C through Theorem 1 ("a level-N front
    exists"); this module implements the {e definitional} route: Def. 20
    declares a composite execution correct iff it is level-N-contained
    (Def. 19) in a {e serial} front (Def. 17).  Theorem 1's (if) direction
    is constructive — topologically sorting a level-N front's constraints
    yields the serial front — and {!comp_c_via_containment} follows that
    construction and then {e verifies} every clause of Defs. 17–19 against
    it, giving an independent consistency check of the whole definitional
    stack (exercised on random histories by the test suite).

    Queries run against an {!Engine} session and reuse its cached analysis
    state — the observed-order closure, the conflict memo and the (lazily
    derived) reduction certificate are computed once per session, not once
    per query.  Asking several definitional questions about one history
    costs one analysis. *)

open Repro_model
open Repro_order
open Ids

type front_spec = {
  fs_members : Int_set.t;  (** The [O] of the front. *)
  fs_input : Rel.t;  (** The front's input order [→]; total for serial fronts. *)
  fs_con : Pair_set.t;  (** Normalised generalized-conflict pairs. *)
}
(** An abstract front, as Defs. 17–19 quantify over: independent of how (or
    whether) some composite execution produced it. *)

val of_front : History.t -> Observed.relations -> Front.t -> front_spec

val is_serial : front_spec -> bool
(** Def. 17: the input order totally orders the members. *)

val level_front : Engine.t -> int -> Front.t option
(** The session history's level-[i] front per Def. 16 — [Some] iff the
    reduction reaches level [i] (every step up to [i] finds its
    calculations and every front on the way is conflict consistent).  Reads
    the session's cached certificate; raises [Invalid_argument] on an empty
    session. *)

val level_equivalent : Engine.t -> int -> front_spec -> bool
(** Def. 18: the session's history has a level-[i] front identical to the
    given one (same members, same input order, same conflict pairs). *)

val level_contained : Engine.t -> int -> front_spec -> bool
(** Def. 19: the session's history is level-[i]-equivalent to some front
    [F*] whose members and conflicts match the given front, and whose
    constraints ([→ ∪ <_o]) are contained in the given front's input
    order. *)

val comp_c_via_containment : Engine.t -> bool
(** Def. 20 via Theorem 1's construction: build the serial front from the
    level-N front's topological order (when the reduction reaches level N)
    and verify {!is_serial} and {!level_contained}.  Agrees with
    {!Compc.is_correct} on every history (tested).  [true] on the empty
    session (the empty execution is vacuously correct). *)
