open Repro_order
open Repro_model
open Ids

type reason =
  | Base_output of { sched : History.sched_id }
  | Base_conflict of { sched : History.sched_id; op_a : id; op_b : id }
  | Climb of { from_a : id; from_b : id; sched : History.sched_id option }
  | Trans of { mid : id }

type entry = { a : id; b : id; reason : reason }

(* [seq] is the recording order: every premise of an entry has a strictly
   smaller [seq], which is what makes the derivations well-founded without
   an occurs-check — see [build]. *)
type cell = { e : entry; seq : int }

type t = {
  h : History.t;
  entries : (int, cell) Hashtbl.t; (* key = a * n_nodes + b *)
  n : int;
  consistent : bool;
}

let key t a b = (a * t.n) + b

(* Forward replay of the Def. 10 saturation (Final reading), mirroring
   [Observed.saturate] run from an empty seed over the full base: pairs are
   recorded at first derivation, so a [Trans]/[Climb] reason only ever
   references pairs recorded earlier.  The base classification mirrors
   [Observed.base]; the test suite pins the final equality against
   [rel.obs]. *)
let build h (rel : Observed.relations) =
  let n = History.n_nodes h in
  let entries = Hashtbl.create (2 * Rel.cardinal rel.Observed.obs) in
  let key a b = (a * n) + b in
  let obs = ref Rel.empty and inv = ref Rel.empty in
  let q = Queue.create () in
  List.iter
    (fun (s : History.schedule) ->
      Rel.iter
        (fun o o' ->
          if History.is_leaf h o || History.is_leaf h o' then
            Queue.add (o, o', Base_output { sched = s.History.sid }) q;
          if History.conflicts h s.History.sid o o' then begin
            let p = History.parent_tx h o and p' = History.parent_tx h o' in
            if p <> p' then
              Queue.add
                (p, p', Base_conflict { sched = s.History.sid; op_a = o; op_b = o' })
                q
          end)
        s.History.weak_out)
    (History.schedules h);
  let seq = ref 0 in
  while not (Queue.is_empty q) do
    let a, b, reason = Queue.pop q in
    if not (Rel.mem a b !obs) then begin
      Hashtbl.replace entries (key a b) { e = { a; b; reason }; seq = !seq };
      incr seq;
      obs := Rel.add a b !obs;
      inv := Rel.add b a !inv;
      Int_set.iter
        (fun c -> if not (Rel.mem a c !obs) then Queue.add (a, c, Trans { mid = b }) q)
        (Rel.succs !obs b);
      Int_set.iter
        (fun c -> if not (Rel.mem c b !obs) then Queue.add (c, b, Trans { mid = a }) q)
        (Rel.succs !inv a);
      let climbs =
        match History.common_op_schedule_id h a b with
        | -1 -> Some None (* rule 3: no common schedule *)
        | s -> if History.conflicts h s a b then Some (Some s) else None
      in
      match climbs with
      | Some sched ->
        let p = History.parent_tx h a and p' = History.parent_tx h b in
        if p <> p' then Queue.add (p, p', Climb { from_a = a; from_b = b; sched }) q
      | None -> ()
    end
  done;
  { h; entries; n; consistent = Rel.equal !obs rel.Observed.obs }

let consistent t = t.consistent

let cardinal t = Hashtbl.length t.entries

let cell t a b = Hashtbl.find_opt t.entries (key t a b)

let mem t a b = cell t a b <> None

let reason t a b = Option.map (fun c -> c.e.reason) (cell t a b)

let is_base = function
  | Base_output _ | Base_conflict _ -> true
  | Climb _ | Trans _ -> false

let premises e =
  match e.reason with
  | Base_output _ | Base_conflict _ -> []
  | Climb { from_a; from_b; _ } -> [ (from_a, from_b) ]
  | Trans { mid } -> [ (e.a, mid); (mid, e.b) ]

(* The sub-DAG of entries reachable from [(a, b)] through premise links,
   sorted by descending [seq].  Premise seqs are strictly smaller than
   their conclusion's, so the target comes first, each entry precedes its
   premises, and the minimal-seq last entry has to be a base pair. *)
let support t a b =
  match cell t a b with
  | None -> []
  | Some c0 ->
    let seen = Hashtbl.create 64 in
    let acc = ref [] in
    let stack = Stack.create () in
    Stack.push c0 stack;
    while not (Stack.is_empty stack) do
      let c = Stack.pop stack in
      let k = key t c.e.a c.e.b in
      if not (Hashtbl.mem seen k) then begin
        Hashtbl.replace seen k ();
        acc := c :: !acc;
        List.iter
          (fun (x, y) ->
            match cell t x y with
            | Some c' -> Stack.push c' stack
            | None -> assert false (* premises are always recorded first *))
          (premises c.e)
      end
    done;
    List.sort (fun c1 c2 -> compare c2.seq c1.seq) !acc

let chain t a b = List.map (fun c -> c.e) (support t a b)

type derivation = { concl : id * id; rule : reason; premises : derivation list }

let derive t a b =
  match support t a b with
  | [] -> None
  | sup ->
    (* Ascending seq: every premise's tree exists before its conclusion's,
       so construction is one pass and sub-derivations are shared. *)
    let built = Hashtbl.create (List.length sup) in
    List.iter
      (fun c ->
        let prem =
          List.map
            (fun (x, y) -> Hashtbl.find built (key t x y))
            (premises c.e)
        in
        Hashtbl.replace built (key t c.e.a c.e.b)
          { concl = (c.e.a, c.e.b); rule = c.e.reason; premises = prem })
      (List.rev sup);
    Hashtbl.find_opt built (key t a b)

let sname h s = (History.schedule h s).History.sname

let pp_reason h ppf = function
  | Base_output { sched } ->
    Fmt.pf ppf "base: weak output of %s involving a leaf (rule 1)" (sname h sched)
  | Base_conflict { sched; op_a; op_b } ->
    Fmt.pf ppf "base: %s orders the conflicting pair %a ~ %a (rule 2)"
      (sname h sched) (History.pp_node_sched h) op_a (History.pp_node_sched h)
      op_b
  | Climb { from_a; from_b; sched = Some s } ->
    Fmt.pf ppf "climbed from %a <_o %a (conflict at %s, rule 2)"
      (History.pp_node_sched h) from_a (History.pp_node_sched h) from_b
      (sname h s)
  | Climb { from_a; from_b; sched = None } ->
    Fmt.pf ppf "climbed from %a <_o %a (no common schedule, rule 3)"
      (History.pp_node_sched h) from_a (History.pp_node_sched h) from_b
  | Trans { mid } ->
    Fmt.pf ppf "transitivity via %a" (History.pp_node_sched h) mid

let pp_chain t ppf (a, b) =
  match chain t a b with
  | [] -> Fmt.pf ppf "%d <_o %d: not in the observed order" a b
  | entries ->
    Fmt.pf ppf "@[<v>%a@]"
      Fmt.(
        list ~sep:cut (fun ppf e ->
            Fmt.pf ppf "%a <_o %a — %a" (History.pp_node_sched t.h) e.a
              (History.pp_node_sched t.h) e.b (pp_reason t.h) e.reason))
      entries
