(** The level-by-level reduction of a composite execution (Defs. 14–16) and
    the Comp-C decision (Defs. 17–20, Theorem 1).

    Starting from the level-0 front, each step [i] tries to represent every
    level-i transaction by a {e calculation} — an isolated, contiguous
    execution of its operations that contradicts neither the observed order
    nor the input orders (Def. 14) — and then replaces those operations by
    the transaction (Def. 16).  The step is implemented by contraction:
    cluster the front by "belongs to the same level-i transaction" and test
    the quotient of [obs ∪ →] for acyclicity (a linear layout with every
    cluster contiguous exists iff the quotient is acyclic), testing
    intra-cluster constraints — including the transaction's own weak
    intra-transaction order — separately.  If every step succeeds and every
    front is conflict consistent, the history has a level-N front and is
    therefore Comp-C (Theorem 1); topologically sorting the final front
    yields the serial order of root transactions that Def. 20 demands. *)

open Repro_order
open Repro_model
open Ids

type failure =
  | Front_not_cc of { index : int; cycle : id list }
      (** The level-[index] front violates conflict consistency: the listed
          nodes form a cycle in [<_o ∪ →] (Def. 13 / Def. 16 step 6). *)
  | No_calculation of { level : int; cluster_cycle : id list }
      (** At step [level], no rearrangement of the previous front isolates
          every level-[level] transaction: the listed cluster representatives
          (transaction ids, or front nodes standing for themselves) form a
          cycle in the contracted constraint graph (Def. 16 step 1). *)
  | Intra_contradiction of { level : int; tx : id; cycle : id list }
      (** Transaction [tx]'s own operations cannot be laid out: its weak
          intra-transaction order contradicts the observed/input orders
          (Def. 14). *)

type step = {
  level : int;  (** The step index [i] — operations of level-[i] schedules were reduced. *)
  front : Front.t;  (** The level-[i] front that the step produced. *)
  layout : id list;
      (** A witness rearrangement of the level-[i-1] front (the [F**] of
          Def. 16 step 1): a linear order of its members in which every
          level-[i] transaction's operations are contiguous and all
          constraints hold. *)
}

type certificate = {
  initial : Front.t;  (** The level-0 front. *)
  steps : step list;  (** Successful steps, in order. *)
  outcome : (id list, failure) result;
      (** [Ok roots]: the serial order of root transactions witnessing
          Comp-C.  [Error f]: why the reduction got stuck. *)
}

val reduce :
  ?rel:Observed.relations ->
  ?trace:Repro_obs.Trace.t ->
  ?metrics:Repro_obs.Metrics.t ->
  History.t ->
  certificate
(** Run the full reduction.  [rel] may be supplied to reuse a previously
    computed observed order.

    [trace] (default {!Repro_obs.Trace.null}) receives wall-clock-timed
    events in category [compc]: one [front_init] instant, one
    [reduction_step] span per level (args: [level], [prev_front] and
    [front] member counts, [clusters] in the contracted graph, [outcome])
    and a [failure] instant with the failure classification on rejection.
    [metrics] receives counters [compc.steps], [compc.accept],
    [compc.reject] and [compc.failure.<kind>] ([front_not_cc],
    [no_calculation], [intra_contradiction]) plus the wall-time histogram
    [compc.step_wall_s]; when [rel] is absent it is also passed to
    {!Observed.compute}. *)

val failure_kind : failure -> string
(** Stable classification tag: ["front_not_cc"], ["no_calculation"] or
    ["intra_contradiction"] — the suffix of the [compc.failure.*]
    counters. *)

val failure_cycle : failure -> id list
(** The witness cycle of any failure, uniformly. *)

val failure_level : failure -> int
(** The front index / step level the failure occurred at. *)

type edge =
  | Obs_edge of { via : id * id }
      (** The edge holds because [via] is in the observed order (for
          [No_calculation]/[Intra_contradiction] cycles, additionally a
          generalized conflict — only those pairs constrain the layout). *)
  | Inp_edge of { via : id * id }  (** [via] is an input-order pair. *)
  | Intra_edge of { via : id * id }
      (** [via] is in the transaction's weak intra order
          ([Intra_contradiction] cycles only). *)
  | Unexplained  (** Should not occur; a defensive fallback. *)

val cycle_edges :
  History.t -> Observed.relations -> failure -> ((id * id) * edge) list
(** The witness cycle as a closed edge list (consecutive members plus the
    closing edge), each edge classified against the relations the cycle was
    found in.  For [No_calculation] cluster cycles the witness pair [via]
    may connect {e operations} of the cluster representatives — the pair one
    level below that induced the quotient edge. *)

val is_correct : certificate -> bool

val pp_failure :
  ?rel:Observed.relations -> History.t -> Format.formatter -> failure -> unit
(** Render a failure.  Cycle members print as [label#id@schedule]
    ({!History.pp_node_sched}).  With [rel], each cycle edge is annotated
    with its origin ([-obs->], [-inp->], [-intra->] per {!cycle_edges}) and
    the cycle is closed back to its first member. *)
