open Repro_order
open Repro_model
open Ids

type t = { index : int; members : Int_set.t; obs : Rel.t; inp : Rel.t }

let members_at h i =
  (* A node sits on the level-i front iff it is "done" at level i (leaf, or
     transaction of a schedule of level <= i) and its parent is not (parent
     is a root kept by propagation, or a transaction of a schedule of level
     > i, or the node is itself a root). *)
  let done_at n = History.level_of_node h n <= i in
  let acc = ref Int_set.empty in
  for n = History.n_nodes h - 1 downto 0 do
    if
      done_at n
      &&
      match History.parent h n with
      | None -> true
      | Some p -> not (done_at p)
    then acc := Int_set.add n !acc
  done;
  !acc

let make h (rel : Observed.relations) i =
  let members = members_at h i in
  let keep n = Int_set.mem n members in
  {
    index = i;
    members;
    obs = Rel.restrict ~keep rel.Observed.obs;
    inp = Rel.restrict ~keep rel.Observed.inp;
  }

let initial h rel = make h rel 0

let constraint_graph f = Rel.union f.obs f.inp

let layout_constraints h rel f =
  (* Def. 16 step 1: only commuting pairs not ordered by the input orders
     may be reordered when isolating transactions, so the binding
     constraints are the input orders plus the observed pairs that are
     generalized conflicts (Def. 11); observed orders between commuting
     operations of a common schedule do not pin the layout down. *)
  Rel.union f.inp (Rel.filter (fun a b -> Observed.conflict h rel a b) f.obs)

(* The conflict-consistency check walks the whole constraint graph, so run
   it dense over the member universe instead of unioning two persistent
   relations first. *)
let cc_cycle f =
  let b = Bitrel.create f.members in
  Rel.iter (fun a b' -> Bitrel.add b a b') f.obs;
  Rel.iter (fun a b' -> Bitrel.add b a b') f.inp;
  Bitrel.find_cycle b

let is_cc f = cc_cycle f = None

let is_serial h f =
  let strong =
    List.fold_left
      (fun acc (s : History.schedule) -> Rel.union acc s.History.strong_in)
      Rel.empty (History.schedules h)
  in
  Rel.total_on f.members (Rel.transitive_closure strong)

let conflict_pairs h rel f = Observed.conflict_pairs h rel f.members

let pp h ppf f =
  let pn = History.pp_node h in
  Fmt.pf ppf "@[<v 2>level %d front:@ members: %a@ <_o: %a@ ->: %a@]" f.index
    Fmt.(list ~sep:comma pn)
    (Int_set.elements f.members)
    Rel.pp f.obs Rel.pp f.inp
