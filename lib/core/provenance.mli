(** Provenance of the observed order: why is a pair in [<_o]?

    {!Observed.compute} returns only the closed relation — enough to decide
    Comp-C, useless for explaining a rejection.  This module re-derives the
    closure with the {e reason} for every pair recorded at the moment it
    first appears: which Def. 10 base rule seeded it, which pair it climbed
    from (rule 2 over a conflict, rule 3 across schedules), or which
    mid-point chained it by transitivity.  The replay mirrors
    {!Observed.saturate} exactly (Final reading), so the derived pair set
    equals the batch closure — {!consistent} checks that equality and the
    test suite pins it against both the persistent and the dense [Bitrel]
    paths.

    Everything here is on-demand forensic machinery: nothing in the accept
    fast path ({!Observed.compute}, {!Reduction.reduce}, the dense kernel)
    calls into it. *)

open Repro_order
open Repro_model
open Ids

type reason =
  | Base_output of { sched : History.sched_id }
      (** Rule 1: a weak-output pair of [sched] involving a leaf. *)
  | Base_conflict of { sched : History.sched_id; op_a : id; op_b : id }
      (** Rule 2 seed: the conflicting weak-output pair [(op_a, op_b)] of
          [sched] ordered the parents. *)
  | Climb of { from_a : id; from_b : id; sched : History.sched_id option }
      (** The pair climbed from [(from_a, from_b)]: over a conflict their
          common schedule [Some s] sees (rule 2), or unconditionally because
          they share no schedule ([None], rule 3). *)
  | Trans of { mid : id }
      (** Transitivity through [mid]: premises [(a, mid)] and [(mid, b)]. *)

type entry = { a : id; b : id; reason : reason }
(** One derived pair with the first reason that produced it. *)

type t
(** The provenance index of one history's full observed-order closure. *)

val build : History.t -> Observed.relations -> t
(** Replay the Def. 10 saturation (Final reading) from the base rules,
    recording each pair's first derivation.  Cost is comparable to one
    {!Observed.compute}; intended for the rejection/explain path only. *)

val consistent : t -> bool
(** Did the replay derive exactly [rel.obs]?  Always true when [rel] came
    from {!Observed.compute}/{!Observed.extend} on the same history; exposed
    so tests (and the evidence report) can assert the cross-validation. *)

val cardinal : t -> int
(** Number of derived pairs (= [Rel.cardinal rel.obs] when consistent). *)

val mem : t -> id -> id -> bool

val reason : t -> id -> id -> reason option
(** The recorded first reason for [(a, b)], if the pair was derived. *)

val is_base : reason -> bool
(** [Base_output] or [Base_conflict] — a Def. 10 seed, premise-free. *)

val premises : entry -> (id * id) list
(** The premise pairs a reason rests on ([[]] exactly for base reasons).
    Every premise was recorded strictly before its conclusion, so premise
    chains are well-founded. *)

val chain : t -> id -> id -> entry list
(** The full derivation of [(a, b)] in dependency order: the conclusion
    first, every entry's premises appearing later, the last entry a base
    pair.  Entries are deduplicated (the derivation DAG, not the expanded
    tree, so the size is bounded by the closure).  [[]] when the pair was
    not derived. *)

type derivation = { concl : id * id; rule : reason; premises : derivation list }
(** A derivation tree; shared sub-derivations are physically shared, so the
    in-memory value is DAG-sized even when the unfolded tree is not. *)

val derive : t -> id -> id -> derivation option
(** The derivation tree of [(a, b)] down to Def. 10 base pairs. *)

val pp_reason : History.t -> Format.formatter -> reason -> unit
(** One-line human rendering of a reason, with operation labels and owning
    schedules. *)

val pp_chain : t -> Format.formatter -> id * id -> unit
(** Multi-line rendering of {!chain}: one [a <_o b — reason] line per
    entry. *)
