(** Counterexample shrinking for rejected histories.

    A rejected execution out of the generators or the simulator easily has
    hundreds of nodes; the witness cycle only ever involves a handful.  The
    shrinker reduces such a history to a {e 1-minimal} sub-history with the
    same {!Reduction.failure_kind}: delta-debugging over the root
    transactions first (whole composite transactions are the cheap big
    bites), then greedy subtree drops over the remaining operations, until
    no single further drop preserves the failure.

    Sub-histories are built through {!History.View}: identifiers are
    re-packed densely (the builder demands it), so the shrunken history's
    ids do not match the original's — render it, don't cross-reference it —
    but each candidate inherits the base history's conflict memo, so
    probing it re-interprets no label pair a previous probe (or the
    session's own analysis) already decided.  Purely a forensic tool:
    nothing on the accept path calls into it. *)

open Repro_order.Ids
open Repro_model

val restrict : History.t -> keep:Int_set.t -> History.t
(** [restrict h ~keep] is
    [History.View.(to_history (make h ~keep))] — the sub-history induced by
    [keep], closed downward (see {!History.View.to_history} for the exact
    restriction semantics and the memo transfer). *)

type result = {
  history : History.t;  (** The 1-minimal (within budget) sub-history. *)
  kind : string;
      (** The preserved {!Reduction.failure_kind} of the original
          rejection — the shrunken history reproduces exactly this kind. *)
  probes : int;  (** Candidate sub-histories checked. *)
  dropped_roots : int;  (** Root subtrees removed. *)
  dropped_nodes : int;  (** Total nodes removed, including root subtrees. *)
}

val shrink : ?max_probes:int -> History.t -> result option
(** [shrink h] is [None] when [h] is accepted by Comp-C; otherwise a
    reduced sub-history that still validates against the model and is
    rejected with the same failure kind.  Every candidate costs one
    validation plus one Comp-C reduction; [max_probes] (default 2000)
    bounds the total.  If the budget runs out the current — still
    reproducing, possibly not 1-minimal — history is returned. *)
