(** The certification engine: one analysis session shared by every
    consumer of a Comp-C verdict.

    Four consumers need the same per-history analysis state — the batch
    checker ({!Compc}), the streaming monitor ({!Monitor}), the forensic
    layer (provenance, evidence, shrinking) and the definitional
    cross-check ({!Equivalence}) — and before this module each rebuilt it
    from scratch: a fresh observed-order closure, a fresh conflict memo, a
    fresh reduction per query.  A {e session} owns that state once:

    - the current history handle and its lazily filled conflict memo
      (carried across extensions by {!History.extend_cache} and onto
      shrink candidates by {!History.View});
    - the observed-order closure ({!Observed.compute} on
      first load, {!Observed.extend} afterwards);
    - the reduction certificate, cached and — on the incremental paths,
      which prove the verdict without a transcript — derived lazily over
      the warm relations;
    - the provenance index, built on first {!explain};
    - a single {!Repro_obs.Sink.t} carrying the event trace and metrics
      registry, replacing the scattered [?trace]/[?metrics] optional pairs
      of the pre-engine layers.

    A session that services {!analyze}, then {!explain}, then a
    monitor-style {!extend} performs exactly one closure computation and
    one conflict-memo build — pinned by the telemetry tests against the
    [compc.observed_computes] counter and {!Repro_model.Conflict.evals}.

    {b Extension contract.}  Each history passed to {!extend} (or to
    {!analyze} on a non-empty session) must {e extend} the session's
    current one: same schedules in the same order; shared nodes keep their
    identifiers, labels, parents and children; new nodes have strictly
    larger identifiers; relations and logs restricted to shared nodes are
    unchanged.  {!History.prefix_by_roots} chains and the simulator's
    deterministic assembly produce exactly this shape.  The cheap
    violations (shrinking, schedule mismatch) raise [Invalid_argument];
    the rest is the caller's responsibility.

    Sessions are single-domain, like the history memos they warm. *)

open Repro_order
open Repro_model
open Ids

type t
(** An analysis session. *)

type verdict =
  | Accepted of id list
      (** Comp-C, with a witness serial order of the root transactions. *)
  | Rejected of Reduction.failure

val create : ?obs:Repro_obs.Sink.t -> ?window:int -> unit -> t
(** A session over the empty prefix (vacuously accepted).

    [window] (default: none) arms auto-truncation: before each monitored
    append, once the certified active window holds at least [window]
    nodes, the session folds it with {!truncate}, so resident memory is
    O(window) instead of O(prefix) on streaming-shaped appends.  The
    effective watermark doubles (capped at 8x) each time an append forces
    a {e restore} — see {!truncate} — so ill-shaped streams do not thrash.
    Raises [Invalid_argument] when [window <= 0].

    [obs] (default
    {!Repro_obs.Sink.null}) receives, through its metrics registry, the
    checker metrics of the underlying {!Observed}/{!Reduction} calls plus
    [compc.checks]/[compc.check_wall_s]/[compc.check_cpu_s] per {!analyze}
    and [monitor.appends], [monitor.fastpath_hits], [monitor.delta_hits]
    [monitor.kernel_hits] and [monitor.append_wall_s] per {!extend}; its
    trace receives the reduction spans.

    {!extend} additionally reports the labeled series
    [monitor.append{path="initial|fast|delta|kernel|full"}] and
    [monitor.append_wall_s_by_path{path=...}], and refreshes the live
    [engine.*] state gauges (node count, closure pair counts, conflict-memo
    fill) after every append.  The sink's flight recorder receives one
    [engine]-category event per advance — name [append] (monitor) or
    [analyze] (batch), labels [path]/[nodes]/[verdict]/[wall_us], severity
    [Error] on a rejection and [Warn] on a monitor append that fell back to
    a full reduction — whatever the metrics registry's state, so a bounded
    operational prehistory is always available on a violation. *)

val of_history : ?obs:Repro_obs.Sink.t -> History.t -> t
(** [of_history h] is a fresh session advanced to [h] by {!analyze} — the
    one-shot batch entry point. *)

val of_parts :
  ?obs:Repro_obs.Sink.t ->
  History.t ->
  Observed.relations ->
  Reduction.certificate ->
  t
(** Adopt analysis state computed elsewhere (a {!Compc.verdict}'s fields)
    as a session, with every cache seeded — no recomputation.  The parts
    must belong together: [rel] the closure of [h], [certificate] the
    reduction over [rel]. *)

(** {1 Entry points} *)

val analyze : t -> History.t -> verdict
(** Batch verdict: advance the session to [h] and force the reduction
    {!certificate}.  On an empty session this is the full pipeline
    (closure fixpoint + reduction); on a non-empty one [h] must extend the
    current history (see the contract above) and the incremental machinery
    of {!extend} is reused.  Reports the [compc.*] check metrics. *)

val extend : t -> History.t -> verdict
(** Monitor append: advance the session to [h] — which must extend the
    current history — for the cost of the delta.  Relative to the previous
    snapshot the engine (in order): carries the conflict memo by blit and
    grows the closure by worklist saturation; skips the reduction entirely
    when the delta provably cannot change the verdict; re-reduces only the
    new block when every added pair points into it; decides level-stable
    appends whose delta lands inside the old block — operations appended
    to old transactions, edges between old nodes — with the session's
    incremental order kernel (Pearce–Kelly topological-order/SCC graphs
    per front level and reduction step, fed only the edge delta); and
    only when schedule levels shift falls back to a full reduction over
    the already-extended relations.  The
    verdict equals {!analyze} on the same history (pinned by qcheck); the
    witness may differ in inessentials (delta roots appended last, a
    different — but equally real — witness cycle).  The previous state is
    retained for one {!undo}.  Reports the [monitor.*] metrics. *)

val undo : t -> unit
(** Roll back the last {!extend}/{!analyze} — the certify-reject path of
    the simulator.  Undo depth is one: raises [Invalid_argument] when no
    snapshot is held (before any advance, or twice in a row).  A
    truncation boundary is a hard wall: immediately after {!truncate}
    (which releases the pre-fold state, snapshot included) undo raises
    [Invalid_argument] with a distinct "cannot roll back across a
    truncation boundary" message.  Appends made {e after} a fold undo
    normally, within the window. *)

(** {1 Frontier truncation}

    The level-by-level reduction only ever consults the open frontier of
    a certified prefix: once a prefix is accepted and its roots closed,
    its interior contributes nothing to any future verdict decided over
    forward, window-shaped appends.  {!truncate} exploits this by folding
    the certified prefix into an immutable {!summary} and releasing the
    dense per-node state — closure pairs, conflict-memo planes
    ({!History.memo_release}), the dense mirror's Bigarray arenas, the
    order kernel, the provenance index — so a monitored session's memory
    is O(active window), not O(prefix).

    {b Invariants.}  The history handle and the carried verdict (with its
    full serial witness) survive the fold; verdicts after a fold equal
    the untruncated session's (pinned by qcheck).  Appends the window
    cannot decide exactly — a schedule-level shift, an operation appended
    into an old transaction, a backward edge, or a derived observed pair
    reaching {e into} the folded region — trigger an automatic {e
    restore}: the dense state is recomputed from the (complete) history,
    the floor drops to 0, and the append is re-decided exactly.  Restores
    are counted and reported; forensic entry points ({!certificate},
    {!provenance}, {!explain}) restore implicitly. *)

type summary = {
  s_nodes : int;  (** the fold point: every node below it is folded *)
  s_roots : int;  (** root transactions in the folded prefix *)
  s_serial : id list;  (** the certified serial witness at the fold *)
  s_front_sizes : int array;
      (** per-level computational-front cardinality at the fold *)
  s_boundary_obs : (id * id) list;
      (** observed pairs crossing the {e previous} fold point — the seam
          between the previously folded region and the window this fold
          absorbed; empty on a session's first fold *)
}
(** The compact record of a folded prefix, replaced on each fold. *)

val truncate : t -> unit
(** Fold the current certified prefix.  No-op on the empty session and at
    an unchanged fold point ([truncate; truncate] ≡ [truncate]); raises
    [Invalid_argument] when the current verdict is a rejection (its
    witness lives in the dense state a fold would release).  Clears the
    undo snapshot. *)

val summary : t -> summary option
(** The record of the most recent fold; [None] before any fold and after
    a restore. *)

val floor : t -> int
(** Nodes below this identifier are folded; 0 when untruncated. *)

(** {1 The session's state} *)

val verdict : t -> verdict option
(** Current verdict; [None] on the empty session. *)

val accepted : t -> bool
(** Current history is Comp-C ([true] on the empty session). *)

val history : t -> History.t option

val relations : t -> Observed.relations option
(** The session's observed/input relations — computed once, extended
    incrementally, shared by every consumer. *)

val obs_pairs : t -> int
(** Pairs in the current observed order (0 on the empty session) — exposed
    so tests can pin that {!undo} restores state exactly. *)

val certificate : t -> Reduction.certificate
(** The reduction certificate of the current history.  Cached: the batch
    paths store it as they decide; the incremental paths derive it on first
    demand over the session's warm relations (one {!Reduction.reduce
    ~rel}, never a closure recompute).  Raises [Invalid_argument] on the
    empty session. *)

val provenance : t -> Provenance.t
(** The observed-order provenance index of the current history, built on
    first demand from the session's cached relations and cached until the
    session advances.  Raises [Invalid_argument] on the empty session. *)

(** {1 Forensics} *)

type explanation = {
  certificate : Reduction.certificate;
  provenance : Provenance.t option;
      (** [Some] exactly on a rejection — nothing on the accept path pays
          for the replay. *)
  cycle_edges : ((id * id) * Reduction.edge) list;
      (** The classified witness cycle; [[]] on acceptance. *)
}

val explain : t -> explanation
(** Everything forensic about the current verdict, from the session's
    caches: the certificate, and — on a rejection — the provenance index
    and the witness cycle classified edge by edge.  Calling [explain]
    after {!analyze} recomputes neither the closure nor the memo.  Raises
    [Invalid_argument] on the empty session. *)

val shrink : ?max_probes:int -> t -> Shrink.result option
(** Delta-debug the current history to a 1-minimal sub-history with the
    same failure kind ([None] when accepted); see {!Shrink.shrink}.
    Candidate restrictions inherit the session history's conflict memo
    through {!History.View}, so probing never re-interprets a label pair
    the session already decided. *)

(** {1 Telemetry} *)

val sink : t -> Repro_obs.Sink.t

type stats = {
  appends : int;
  fastpath_hits : int;
  delta_hits : int;
  kernel_hits : int;
}

val stats : t -> stats
(** Lifetime counters (not rolled back by {!undo}): total advances, how
    many skipped the reduction entirely on the delta-empty fast path, how
    many re-reduced only the new block, and how many were decided by the
    incremental order kernel. *)

val truncations : t -> int
(** Lifetime fold count. *)

val restores : t -> int
(** Lifetime count of dense-state restores (window breaches and forensic
    demands against a truncated frame). *)

val resident_estimate_words : t -> int
(** O(1) counter-based estimate of the session's resident {e dense
    certification} state, in words: closure pairs, conflict-memo planes,
    the mirror's off-heap Bigarray store (invisible to
    [Obj.reachable_words]), kernel adjacency and the provenance index.
    Excludes the immutable history array.  This is the quantity frontier
    truncation bounds, and the series the memory-flatness CI gates
    watch. *)

val introspect : ?deep:bool -> t -> Repro_obs.Json.t
(** The session's state report ([engine-stats/1]): what this session is
    holding in memory and what it cost to get here — history sizing
    (nodes, roots, schedules, order), closure pair counts (observed,
    input, base), conflict-memo fill (known pairs / total pair
    space), provenance-index size if built, whether the reduction
    certificate is materialized, the lifetime {!stats} counters,
    [Obj.reachable_words] over the session's current frame (history +
    relations + caches), and [Gc.quick_stat] allocation deltas since the
    session was created.  On the empty session the [history] field is
    null and only the session/gc sections are reported.  The [session]
    section also carries the truncation state (floor, fold and restore
    counts, configured window) and a [summary] field renders the current
    {!summary}.

    [deep] (default [true]) walks the reachable heap with
    [Obj.reachable_words] — O(prefix), so callers poll it sparingly;
    [~deep:false] reports only the O(1) {!resident_estimate_words} in the
    [memory] section (the monitor CLI's polling path). *)
