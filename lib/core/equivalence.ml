open Repro_model
open Repro_order
open Ids

type front_spec = {
  fs_members : Int_set.t;
  fs_input : Rel.t;
  fs_con : Pair_set.t;
}

let con_pairs h rel (f : Front.t) =
  Observed.conflict_pairs h rel f.Front.members
  |> List.map Pair.normalise
  |> Pair_set.of_list

let of_front h rel (f : Front.t) =
  { fs_members = f.Front.members; fs_input = f.Front.inp; fs_con = con_pairs h rel f }

let is_serial fs = Rel.total_on fs.fs_members fs.fs_input

(* All queries read the session's cached state: the certificate (the
   reduction is run at most once per session, lazily) and the relations
   (the closure the session already computed).  Before the engine, each
   call here re-ran [Reduction.reduce] and [Observed.compute] from
   scratch — the regression test in test_engine.ml pins that the
   [compc.observed_computes] counter no longer moves under these. *)
let level_front s i =
  let cert = Engine.certificate s in
  let reached =
    match cert.Reduction.outcome with
    | Ok _ -> true
    | Error
        ( Reduction.Front_not_cc { index; _ }
        | Reduction.No_calculation { level = index; _ }
        | Reduction.Intra_contradiction { level = index; _ } ) ->
      index > i
  in
  if not reached then None
  else if i = 0 then Some cert.Reduction.initial
  else
    List.find_map
      (fun (st : Reduction.step) ->
        if st.Reduction.level = i then Some st.Reduction.front else None)
      cert.Reduction.steps

(* [certificate] above raised on the empty session, so the history and
   relations are present whenever a front came back. *)
let parts s =
  (Option.get (Engine.history s), Option.get (Engine.relations s))

let level_equivalent s i fs =
  match level_front s i with
  | None -> false
  | Some f ->
    let h, rel = parts s in
    Int_set.equal f.Front.members fs.fs_members
    && Rel.equal f.Front.inp fs.fs_input
    && Pair_set.equal (con_pairs h rel f) fs.fs_con

let level_contained s i fs =
  match level_front s i with
  | None -> false
  | Some f ->
    let h, rel = parts s in
    Int_set.equal f.Front.members fs.fs_members
    && Pair_set.equal (con_pairs h rel f) fs.fs_con
    && Rel.subset (Front.constraint_graph f) fs.fs_input

let comp_c_via_containment s =
  match Engine.history s with
  | None -> true (* the empty execution is vacuously Comp-C *)
  | Some h -> (
    let n = History.order h in
    match level_front s n with
    | None -> false
    | Some f -> (
      let rel = Option.get (Engine.relations s) in
      (* Theorem 1 (if): topologically sort the front's constraints into a
         total order — the serial front — then verify Defs. 17 and 19. *)
      match Rel.topo_sort ~nodes:f.Front.members (Front.constraint_graph f) with
      | None -> false
      | Some order ->
        let rec chain acc = function
          | a :: (b :: _ as rest) -> chain (Rel.add a b acc) rest
          | _ -> acc
        in
        let serial =
          {
            fs_members = f.Front.members;
            fs_input = Rel.transitive_closure (chain Rel.empty order);
            fs_con = con_pairs h rel f;
          }
        in
        is_serial serial && level_contained s n serial))
