(** Incremental Comp-C monitor: amortized prefix certification.

    A monitor holds a growing execution and re-certifies it after each
    extension for the cost of the {e delta}, not the whole history.  Since
    the certification engine landed, this module is a thin facade over
    {!Engine} — a monitor {e is} a session whose only entry point is the
    incremental {!Engine.extend} — kept for its established vocabulary
    (append/undo/stats).  See {!Engine} for the machinery: the conflict
    memo carried by blit, the worklist-saturated closure, the
    verdict-carrying fast path, the new-block delta reduction, the
    incremental order kernel for deltas landing inside the old block, and
    the full fallback on level shifts.

    Verdict equivalence: after any sequence of appends the monitor's
    verdict equals {!Compc.is_correct} on the current history — pinned by
    the qcheck property in [test/test_monitor.ml].  The reported witness
    may differ in inessentials (the serial order places delta roots last;
    a rejection may cite a different — but equally real — cycle).

    {b Extension contract.}  Each appended history must {e extend} the
    previous one: same schedules in the same order; shared nodes keep
    their identifiers, labels, parents and children; new nodes have
    strictly larger identifiers; relations and logs restricted to shared
    nodes are unchanged.  {!History.prefix_by_roots} chains and the
    simulator's deterministic assembly produce exactly this shape.  The
    cheap violations (shrinking, schedule mismatch) raise
    [Invalid_argument]; the rest is the caller's responsibility.

    Values are single-domain, like the history memos they warm. *)

open Repro_order
open Repro_model
open Ids

type t

type verdict =
  | Accepted of id list
      (** Comp-C, with a witness serial order of the root transactions
          (a valid one; not necessarily the batch checker's). *)
  | Rejected of Reduction.failure

val create :
  ?metrics:Repro_obs.Metrics.t ->
  ?recorder:Repro_obs.Recorder.t ->
  ?window:int ->
  unit ->
  t
(** A monitor over the empty prefix (vacuously accepted).  [window]
    (default unbounded) enables bounded-memory streaming: once the active
    suffix reaches [window] nodes after an accepted append, the certified
    prefix is folded into a compact summary and its dense per-node state
    released — see {!Engine.truncate}.  Verdicts are unchanged (parity is
    pinned by [test/test_truncate.ml]); {!undo} across the fold boundary
    is refused.  Raises [Invalid_argument] when [window <= 0].  [metrics]
    (default null) receives counters [monitor.appends],
    [monitor.fastpath_hits], [monitor.delta_hits], [monitor.kernel_hits], the labeled
    [monitor.append{path=...}] series, histogram [monitor.append_wall_s],
    the live [engine.*] state gauges, and the per-append checker metrics
    of the underlying {!Observed} / {!Reduction} calls.  [recorder]
    (default null) receives one flight-recorder event per append — the
    bounded operational prehistory dumped with a violation's evidence. *)

val introspect : ?deep:bool -> t -> Repro_obs.Json.t
(** The underlying session's state report; see {!Engine.introspect}.
    [~deep:false] (default [true]) skips the [Obj.reachable_words] walk —
    the cheap-estimate path for high-frequency polling. *)

val append : t -> History.t -> verdict
(** [append t h] advances the monitor to [h] — which must extend the
    current snapshot (see the contract above) — and returns the verdict
    for [h].  The previous state is retained for one {!undo}. *)

val verdict : t -> verdict option
(** Current verdict; [None] before the first append (empty prefix). *)

val accepted : t -> bool
(** Current prefix is Comp-C ([true] before the first append). *)

val undo : t -> unit
(** Roll back the last {!append} — the certify-reject path of the
    simulator.  Undo depth is one: raises [Invalid_argument] when no
    snapshot is held (before any append, or twice in a row), and also
    when the last append crossed a truncation boundary (the folded state
    cannot be resurrected; the message says so distinctly). *)

val truncate : t -> unit
(** Fold the certified prefix now; see {!Engine.truncate}.  Typically
    unnecessary — pass [?window] to {!create} and the monitor truncates
    itself from the append path. *)

val floor : t -> int
(** Nodes below this id are folded into the summary (0 when never
    truncated); see {!Engine.floor}. *)

val history : t -> History.t option
(** Current snapshot. *)

val relations : t -> Observed.relations option
(** The incrementally maintained observed/input relations of the current
    snapshot ([None] before the first append).  Forensic consumers reuse
    them to re-derive a rejected prefix's certificate and provenance
    without recomputing the closure from scratch. *)

val obs_pairs : t -> int
(** Pairs in the current observed order (0 on the empty prefix) — exposed
    so tests can pin that {!undo} restores state exactly. *)

type stats = {
  appends : int;
  fastpath_hits : int;
  delta_hits : int;
  kernel_hits : int;
}

val stats : t -> stats
(** Lifetime counters (not rolled back by {!undo}): total appends, how
    many skipped the reduction entirely on the delta-empty fast path, how
    many re-reduced only the new block, and how many were decided by the
    incremental order kernel. *)
