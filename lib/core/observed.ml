open Repro_order
open Repro_model
open Ids

type relations = {
  obs : Rel.t;
  inp : Rel.t;
  inp_strong : Rel.t;
  base_obs : Rel.t;
}

(* Static sources of the observed order:
   - rule 1: a weak-output pair involving a leaf is observed as ordered
     (leaves are atomic; their order is an execution fact);
   - rule 2: a conflicting weak-output pair orders the parents (the
     schedule's serialization decision, pulled up one level). *)
let base_rules h =
  List.fold_left
    (fun acc (s : History.schedule) ->
      Rel.fold
        (fun o o' acc ->
          let acc =
            if History.is_leaf h o || History.is_leaf h o' then Rel.add o o' acc
            else acc
          in
          if History.conflicts h s.History.sid o o' then begin
            let p = History.parent_tx h o and p' = History.parent_tx h o' in
            if p <> p' then Rel.add p p' acc else acc
          end
          else acc)
        s.History.weak_out acc)
    Rel.empty (History.schedules h)

type variant = Final | No_forgetting | Eager_forgetting

(* One round of upward propagation.  In the Final reading, a pair between
   operations of a common schedule climbs only if that schedule sees a
   conflict (rule 2 applied to observed pairs: the schedule is authoritative
   about commutativity, so non-conflicting orders are forgotten on the way
   up — the Figure-3/4 "conflicts can disappear" mechanism); a
   cross-schedule pair climbs unconditionally (rule 3).  The other variants
   exist for the ablation experiment only.

   Note on the algorithm: rounds of propagation alternating with batch
   transitive closure (SCC condensation) beat an incremental pair-at-a-time
   saturation here — dense observed orders approach n^2 pairs, and the
   batch closure's constants win by 3-4x on the E9 workloads. *)
let propagate variant h r =
  Rel.fold
    (fun a b acc ->
      let climbs =
        match variant with
        | No_forgetting -> true
        | Final | Eager_forgetting -> (
          match History.common_op_schedule h a b with
          | Some s -> History.conflicts h s a b
          | None -> true)
      in
      if climbs then begin
        let p = History.parent_tx h a and p' = History.parent_tx h b in
        if
          p <> p'
          && (variant <> Eager_forgetting || History.common_op_schedule h p p' = None)
        then Rel.add p p' acc
        else acc
      end
      else acc)
    r r

let fixpoint variant h base =
  let rounds = ref 0 in
  let rec go r =
    incr rounds;
    let r' = Rel.transitive_closure (propagate variant h r) in
    if Rel.cardinal r' = Rel.cardinal r then r' else go r'
  in
  let r = go (Rel.transitive_closure base) in
  (r, !rounds)

let compute_with ?(metrics = Repro_obs.Metrics.null) variant h =
  let base_obs = base_rules h in
  let base_obs =
    match variant with
    | Final | No_forgetting -> base_obs
    | Eager_forgetting ->
      (* Rule-2 target pairs between same-schedule operations are dropped
         from the base too. *)
      Rel.filter
        (fun a b ->
          History.is_leaf h a || History.is_leaf h b
          || History.common_op_schedule h a b = None)
        base_obs
  in
  let t0 = if Repro_obs.Metrics.enabled metrics then Sys.time () else 0.0 in
  let obs, rounds = fixpoint variant h base_obs in
  if Repro_obs.Metrics.enabled metrics then begin
    let module M = Repro_obs.Metrics in
    M.observe metrics "compc.observed_wall_s" (Sys.time () -. t0);
    M.set metrics "compc.obs_base_pairs" (float_of_int (Rel.cardinal base_obs));
    M.set metrics "compc.obs_pairs" (float_of_int (Rel.cardinal obs));
    M.set metrics "compc.obs_rounds" (float_of_int rounds)
  end;
  let inp, inp_strong =
    List.fold_left
      (fun (w, s) (sc : History.schedule) ->
        (Rel.union w sc.History.weak_in, Rel.union s sc.History.strong_in))
      (Rel.empty, Rel.empty) (History.schedules h)
  in
  { obs; inp; inp_strong; base_obs }

let compute ?metrics h = compute_with ?metrics Final h

let conflict h rel a b =
  a <> b
  &&
  match History.common_op_schedule h a b with
  | Some s -> History.conflicts h s a b
  | None -> Rel.mem a b rel.obs || Rel.mem b a rel.obs

let conflict_pairs h rel members =
  let elts = Int_set.elements members in
  let rec go acc = function
    | [] -> List.rev acc
    | a :: rest ->
      let acc =
        List.fold_left
          (fun acc b -> if conflict h rel a b then (a, b) :: acc else acc)
          acc rest
      in
      go acc rest
  in
  go [] elts
