open Repro_order
open Repro_model
open Ids

type relations = {
  obs : Rel.t;
  inp : Rel.t;
  inp_strong : Rel.t;
}
(* Neither the inverse of [obs] nor the base pairs live here: {!extend}'s
   worklist saturation joins new pairs against predecessors on the dense
   mirror's [inv_a] arena, and the base pairs are a pure function of the
   history ({!base}), recomputed on the rare paths that want them
   (introspection, provenance checks).  Keeping either in step would put
   more persistent-map path copying on every append of a monitored
   stream. *)

(* Static sources of the observed order:
   - rule 1: a weak-output pair involving a leaf is observed as ordered
     (leaves are atomic; their order is an execution fact);
   - rule 2: a conflicting weak-output pair orders the parents (the
     schedule's serialization decision, pulled up one level). *)
let base_rules h =
  List.fold_left
    (fun acc (s : History.schedule) ->
      Rel.fold
        (fun o o' acc ->
          let acc =
            if History.is_leaf h o || History.is_leaf h o' then Rel.add o o' acc
            else acc
          in
          if History.conflicts h s.History.sid o o' then begin
            let p = History.parent_tx h o and p' = History.parent_tx h o' in
            if p <> p' then Rel.add p p' acc else acc
          end
          else acc)
        s.History.weak_out acc)
    Rel.empty (History.schedules h)

type variant = Final | No_forgetting | Eager_forgetting

(* One round of upward propagation.  In the Final reading, a pair between
   operations of a common schedule climbs only if that schedule sees a
   conflict (rule 2 applied to observed pairs: the schedule is authoritative
   about commutativity, so non-conflicting orders are forgotten on the way
   up — the Figure-3/4 "conflicts can disappear" mechanism); a
   cross-schedule pair climbs unconditionally (rule 3).  The other variants
   exist for the ablation experiment only.

   Note on the algorithm: rounds of propagation alternating with batch
   transitive closure (SCC condensation) beat an incremental pair-at-a-time
   saturation here — dense observed orders approach n^2 pairs, and the
   batch closure's constants win by 3-4x on the E9 workloads. *)
(* The fixpoint runs entirely in the dense representation: the universe is
   the full node array of the history (identifiers are dense by
   construction), propagation adds parent pairs in place into a copy, and
   each round's transitive closure is the word-parallel kernel.  The
   persistent [Rel.t] is produced once, at the boundary. *)
let fixpoint variant h base =
  (* Propagation only ever adds pairs between ancestors of already-related
     nodes, so the dense universe is the base's nodes closed under
     [parent_tx] — on sparsely conflicting histories this is a small
     fraction of the forest and the closure rounds stay cheap. *)
  let b0 =
    let n = History.n_nodes h in
    let mark = Bytes.make n '\000' in
    let count = ref 0 in
    let rec climb v =
      if Bytes.unsafe_get mark v = '\000' then begin
        Bytes.unsafe_set mark v '\001';
        incr count;
        let p = History.parent_tx h v in
        if p <> v then climb p
      end
    in
    Rel.iter
      (fun a b ->
        climb a;
        climb b)
      base;
    let ids = Array.make (max 1 !count) 0 in
    let j = ref 0 in
    for v = 0 to n - 1 do
      if Bytes.unsafe_get mark v = '\001' then begin
        ids.(!j) <- v;
        incr j
      end
    done;
    let b = Bitrel.of_ids (if !count = 0 then [||] else ids) in
    Rel.iter (fun a b' -> Bitrel.add b a b') base;
    b
  in
  let rounds = ref 0 in
  (* One in-place pass; [false] means nothing new was added: [cur] is still
     transitively closed, so the fixpoint is reached and the confirming
     closure round is skipped.  Pairs added mid-pass are processed either
     this pass or (since the pass reports a change) the next one. *)
  let propagate_dense cur =
    let changed = ref false in
    Bitrel.iter
      (fun a b ->
        let climbs =
          match variant with
          | No_forgetting -> true
          | Final | Eager_forgetting -> (
            match History.common_op_schedule_id h a b with
            | -1 -> true
            | s -> History.conflicts h s a b)
        in
        if climbs then begin
          let p = History.parent_tx h a and p' = History.parent_tx h b in
          if
            p <> p'
            && (variant <> Eager_forgetting
               || History.common_op_schedule_id h p p' = -1)
            && not (Bitrel.mem cur p p')
          then begin
            Bitrel.add cur p p';
            changed := true
          end
        end)
      cur;
    !changed
  in
  let rec go cur =
    incr rounds;
    if propagate_dense cur then go (Bitrel.transitive_closure cur) else cur
  in
  let r = go (Bitrel.transitive_closure b0) in
  (Rel.of_bitrel r, !rounds)

let compute_with ?(metrics = Repro_obs.Metrics.null) variant h =
  let base_obs = base_rules h in
  let base_obs =
    match variant with
    | Final | No_forgetting -> base_obs
    | Eager_forgetting ->
      (* Rule-2 target pairs between same-schedule operations are dropped
         from the base too. *)
      Rel.filter
        (fun a b ->
          History.is_leaf h a || History.is_leaf h b
          || History.common_op_schedule h a b = None)
        base_obs
  in
  let enabled = Repro_obs.Metrics.enabled metrics in
  let t0w = if enabled then Repro_obs.Clock.now_wall () else 0.0 in
  let t0c = if enabled then Repro_obs.Clock.now_cpu () else 0.0 in
  let obs, rounds = fixpoint variant h base_obs in
  if enabled then begin
    let module M = Repro_obs.Metrics in
    M.incr metrics "compc.observed_computes";
    M.observe metrics "compc.observed_wall_s"
      (Repro_obs.Clock.now_wall () -. t0w);
    M.observe metrics "compc.observed_cpu_s" (Repro_obs.Clock.now_cpu () -. t0c);
    M.set metrics "compc.obs_base_pairs" (float_of_int (Rel.cardinal base_obs));
    M.set metrics "compc.obs_pairs" (float_of_int (Rel.cardinal obs));
    M.set metrics "compc.obs_rounds" (float_of_int rounds)
  end;
  let inp, inp_strong =
    List.fold_left
      (fun (w, s) (sc : History.schedule) ->
        (Rel.union w sc.History.weak_in, Rel.union s sc.History.strong_in))
      (Rel.empty, Rel.empty) (History.schedules h)
  in
  { obs; inp; inp_strong }

let compute ?metrics h = compute_with ?metrics Final h

let base = base_rules

(* The base-rule pairs contributed by the extension: every new weak-output
   pair touches a node [>= n_old] (the orders restricted to shared nodes
   are unchanged), and the rules' other inputs — leaf-ness, conflict
   specifications, parents of shared nodes — are static.  So it suffices
   to replay the rules on the weak-output pairs with a new endpoint,
   probed by successor set: sources at or above [n_old] contribute all
   their pairs, older sources only the tail of their successor set.
   Candidates already observed are filtered by the saturation's membership
   check, so over-approximation is harmless. *)
let base_delta h ~n_old =
  List.fold_left
    (fun acc (s : History.schedule) ->
      let emit o o' acc =
        let acc =
          if History.is_leaf h o || History.is_leaf h o' then Rel.add o o' acc
          else acc
        in
        if History.conflicts h s.History.sid o o' then begin
          let p = History.parent_tx h o and p' = History.parent_tx h o' in
          if p <> p' then Rel.add p p' acc else acc
        end
        else acc
      in
      (* Walk the operations in place (transactions x children) instead of
         materializing [ops_of_schedule]'s list, and probe each old
         source with an allocation-free max-element check before paying
         for a split: a quiescent schedule then contributes no garbage at
         all, which is what keeps the monitor's per-append allocation
         proportional to the delta. *)
      let source acc o =
        let ss = Rel.succs s.History.weak_out o in
        if o >= n_old then Int_set.fold (emit o) ss acc
        else if (not (Int_set.is_empty ss)) && Int_set.max_elt ss >= n_old
        then
          let _, _, news = Int_set.split (n_old - 1) ss in
          Int_set.fold (emit o) news acc
        else acc
      in
      Int_set.fold
        (fun t acc -> List.fold_left source acc (History.children h t))
        s.History.transactions acc)
    Rel.empty (History.schedules h)

type delta = {
  d_obs : (id * id) list;
  d_inp : (id * id) list;
  d_inp_strong : (id * id) list;
}

(* Dense mirror of the observed closure for the saturation loop: bit
   arenas for membership and successor/predecessor scans, plus a
   preallocated flat worklist, so the per-pair joins of {!extend} touch
   the minor heap only for the persistent [Rel.t] boundary at the end.
   The mirror is rebuilt from [prev.obs] whenever it is invalid (session
   start, undo, non-extension advance) — an O(|obs|) bit-set pass that
   the callers only pay on paths that are already O(|obs|). *)
type inc = {
  mutable valid : bool;
  mutable nodes : int; (* node count the mirror is synced to *)
  mutable floor : int;
      (* nodes below this are folded (engine frontier truncation): the
         arenas index by [id - floor] and mirror only pairs with both
         endpoints at or above it.  Pairs from a folded source into the
         window ("boundary pairs") are tracked outside the arenas; a
         pair {e targeting} the folded region cannot be represented at
         all and raises {!Below_floor} — the engine's cue to restore the
         exact dense state. *)
  obs_a : Arena.t;
  inv_a : Arena.t;
  mutable q : int array; (* flattened (a, b) worklist *)
  mutable q_len : int;
}

exception Below_floor of id * id

let inc_create () =
  {
    valid = false;
    nodes = 0;
    floor = 0;
    obs_a = Arena.make ~rows:0 ~cols:0;
    inv_a = Arena.make ~rows:0 ~cols:0;
    q = Array.make 512 0;
    q_len = 0;
  }

let inc_invalidate inc = inc.valid <- false

let inc_floor inc = inc.floor

(* Move the mirror's floor.  Raising it (truncation) also gives the
   arenas' backing store back — the whole point of the fold is that the
   dense O(prefix²) bits stop being resident; lowering it to 0 (restore)
   just invalidates, since the next sync will need the full size again. *)
let inc_rebase inc ~floor =
  if floor < 0 then invalid_arg "Observed.inc_rebase: negative floor";
  inc.floor <- floor;
  inc.valid <- false;
  if floor > 0 then begin
    Arena.shrink inc.obs_a ~rows:0 ~cols:0;
    Arena.shrink inc.inv_a ~rows:0 ~cols:0;
    if Array.length inc.q > 512 then inc.q <- Array.make 512 0
  end

let inc_resident_words inc =
  ((Arena.resident_bytes inc.obs_a + Arena.resident_bytes inc.inv_a + 7) / 8)
  + Array.length inc.q

let inc_sync inc prev_obs ~n_old ~n_new =
  let fl = inc.floor in
  let w = max 0 (n_new - fl) in
  if not inc.valid then begin
    Arena.reset inc.obs_a ~rows:w ~cols:w;
    Arena.reset inc.inv_a ~rows:w ~cols:w;
    Rel.iter
      (fun a b ->
        (* Boundary pairs (folded source) live only in the persistent
           relation; pairs targeting the folded region never occur in a
           window relation (see [saturate_dense]). *)
        if a >= fl && b >= fl then begin
          Arena.set inc.obs_a (a - fl) (b - fl);
          Arena.set inc.inv_a (b - fl) (a - fl)
        end)
      prev_obs;
    inc.valid <- true;
    inc.nodes <- n_old
  end
  else begin
    Arena.ensure inc.obs_a ~rows:w ~cols:w;
    Arena.ensure inc.inv_a ~rows:w ~cols:w
  end

let inc_push inc a b =
  if inc.q_len + 2 > Array.length inc.q then begin
    let bigger = Array.make (2 * Array.length inc.q) 0 in
    Array.blit inc.q 0 bigger 0 inc.q_len;
    inc.q <- bigger
  end;
  inc.q.(inc.q_len) <- a;
  inc.q.(inc.q_len + 1) <- b;
  inc.q_len <- inc.q_len + 2

(* Worklist saturation of the Def. 10 rules (Final reading) from an
   already-closed seed: each genuinely new pair is joined against the
   current successors and predecessors (transitivity) and climbed to the
   parents where the common schedule sees a conflict.  The seed is closed
   under all rules, so only pairs reachable from the delta are ever
   touched — across a monitored run the total work is proportional to the
   final closure, not to |appends| x |closure|.  Runs on the dense
   mirror; the genuinely new pairs come back in insertion order so the
   caller can build the persistent relations (and feed the engine's
   incremental structures) from the exact delta.

   With a nonzero floor (frontier truncation) the arenas cover only the
   window and three pair shapes are distinguished:
   - window pairs (both endpoints >= floor): handled exactly as before,
     at offset coordinates;
   - boundary pairs (folded source, window target): deduplicated against
     [prev_obs] and a per-call table, joined against the {e successors}
     of the window endpoint only and climbed as usual.  The predecessor
     joins through the folded region are skipped — they can only produce
     further boundary pairs (a folded node's predecessors are folded,
     because no window-to-folded pair exists short of a breach), and
     boundary pairs are never consulted by the forward/delta machinery
     that decides windowed verdicts;
   - pairs targeting the folded region: {!Below_floor}.  Such a pair
     would have to be joined against the folded closure to stay exact,
     so the caller must restore the dense state and recompute. *)
let saturate_dense h inc ~prev_obs delta =
  inc.q_len <- 0;
  Rel.iter (fun a b -> inc_push inc a b) delta;
  let fl = inc.floor in
  let boundary = if fl > 0 then Hashtbl.create 16 else Hashtbl.create 0 in
  let added = ref [] in
  let n_added = ref 0 in
  let head = ref 0 in
  let climb a b =
    let climbs =
      match History.common_op_schedule_id h a b with
      | -1 -> true
      | s -> History.conflicts h s a b
    in
    if climbs then begin
      let p = History.parent_tx h a and p' = History.parent_tx h b in
      if p <> p' then inc_push inc p p'
    end
  in
  (* No irreflexivity filter: a cycle's closure contains the reflexive
     pairs (the batch kernel materializes them too), and those self-loops
     are what the reduction's cycle searches later trip on. *)
  while !head < inc.q_len do
    let a = inc.q.(!head) and b = inc.q.(!head + 1) in
    head := !head + 2;
    if b < fl then raise (Below_floor (a, b))
    else if a < fl then begin
      if not (Hashtbl.mem boundary (a, b)) && not (Rel.mem a b prev_obs)
      then begin
        Hashtbl.add boundary (a, b) ();
        added := (a, b) :: !added;
        incr n_added;
        Arena.row_iter inc.obs_a (b - fl) (fun c ->
            let c = c + fl in
            if not (Hashtbl.mem boundary (a, c)) && not (Rel.mem a c prev_obs)
            then inc_push inc a c);
        climb a b
      end
    end
    else if not (Arena.get inc.obs_a (a - fl) (b - fl)) then begin
      Arena.set inc.obs_a (a - fl) (b - fl);
      Arena.set inc.inv_a (b - fl) (a - fl);
      added := (a, b) :: !added;
      incr n_added;
      Arena.row_iter inc.obs_a (b - fl) (fun c ->
          if not (Arena.get inc.obs_a (a - fl) c) then inc_push inc a (c + fl));
      Arena.row_iter inc.inv_a (a - fl) (fun c ->
          if not (Arena.get inc.obs_a c (b - fl)) then inc_push inc (c + fl) b);
      climb a b
    end
  done;
  inc.q_len <- 0;
  (List.rev !added, !n_added)

(* New pairs of one schedule's input order under extension: the order
   restricted to shared nodes is unchanged (the extension contract), so
   every new pair touches a new node and is replayed from the source
   adjacency alone — old sources contribute the tail of their successor
   sets past [n_old], new sources everything.  The probe per old source
   is an allocation-free max-element check, so a quiescent schedule costs
   O(log) per source and allocates nothing. *)
let input_delta ~n_old ~sources rel acc0 =
  let acc = ref acc0 in
  let emit a b = if not (Rel.mem a b !acc) then acc := Rel.add a b !acc in
  Int_set.iter
    (fun o ->
      let ss = Rel.succs rel o in
      if o >= n_old then Int_set.iter (fun x -> emit o x) ss
      else if (not (Int_set.is_empty ss)) && Int_set.max_elt ss >= n_old then begin
        let _, _, news = Int_set.split (n_old - 1) ss in
        Int_set.iter (fun x -> emit o x) news
      end)
    sources;
  !acc

(* Incremental recomputation for the monitor.  [h] extends the history
   [prev] was computed from, so the old base pairs are still base pairs
   (weak output orders only grow, leaves stay leaves, parents are stable)
   and [prev.obs] = lfp(old base) is a sound seed: the Def. 10 rules are
   monotone, hence lfp(prev.obs ∪ new base) = lfp(new base).  When no new
   base pair appeared, the old closed relation is already the fixpoint and
   the saturation is skipped entirely.  The input orders are grown the
   same way — per-schedule delta replay instead of re-unioning every
   schedule — so the per-append cost tracks the delta, not the prefix. *)
let extend ?(metrics = Repro_obs.Metrics.null) ?inc ~prev ~n_old h =
  let enabled = Repro_obs.Metrics.enabled metrics in
  let t0w = if enabled then Repro_obs.Clock.now_wall () else 0.0 in
  let n_new = History.n_nodes h in
  let delta_base = base_delta h ~n_old in
  let obs, d_obs, added =
    if Rel.is_empty delta_base then (prev.obs, [], 0)
    else begin
      let inc =
        match inc with
        | Some i -> i
        | None -> inc_create () (* one-shot mirror: correct, unshared *)
      in
      inc_sync inc prev.obs ~n_old ~n_new;
      let pairs, n_added = saturate_dense h inc ~prev_obs:prev.obs delta_base in
      let obs =
        List.fold_left (fun o (a, b) -> Rel.add a b o) prev.obs pairs
      in
      (obs, pairs, n_added)
    end
  in
  (match inc with
  | Some i when i.valid -> i.nodes <- n_new
  | _ -> ());
  if enabled then begin
    let module M = Repro_obs.Metrics in
    M.observe metrics "compc.observed_wall_s"
      (Repro_obs.Clock.now_wall () -. t0w);
    M.observe metrics "compc.obs_saturated_pairs" (float_of_int added);
    M.observe metrics "compc.obs_delta_base_pairs"
      (float_of_int (Rel.cardinal delta_base))
  end;
  let d_inp, d_inp_strong =
    List.fold_left
      (fun (w, s) (sc : History.schedule) ->
        let sources = sc.History.transactions in
        ( input_delta ~n_old ~sources sc.History.weak_in w,
          input_delta ~n_old ~sources sc.History.strong_in s ))
      (Rel.empty, Rel.empty) (History.schedules h)
  in
  let inp = Rel.fold (fun a b r -> Rel.add a b r) d_inp prev.inp in
  let inp_strong =
    Rel.fold (fun a b r -> Rel.add a b r) d_inp_strong prev.inp_strong
  in
  ( { obs; inp; inp_strong },
    { d_obs; d_inp = Rel.to_list d_inp; d_inp_strong = Rel.to_list d_inp_strong }
  )

let conflict h rel a b =
  a <> b
  &&
  match History.common_op_schedule_id h a b with
  | -1 -> Rel.mem a b rel.obs || Rel.mem b a rel.obs
  | s -> History.conflicts h s a b

let conflict_pairs h rel members =
  let elts = Int_set.elements members in
  let rec go acc = function
    | [] -> List.rev acc
    | a :: rest ->
      let acc =
        List.fold_left
          (fun acc b -> if conflict h rel a b then (a, b) :: acc else acc)
          acc rest
      in
      go acc rest
  in
  go [] elts
