open Repro_order
open Repro_model
open Ids

type relations = {
  obs : Rel.t;
  inp : Rel.t;
  inp_strong : Rel.t;
  base_obs : Rel.t;
}

(* Static sources of the observed order:
   - rule 1: a weak-output pair involving a leaf is observed as ordered
     (leaves are atomic; their order is an execution fact);
   - rule 2: a conflicting weak-output pair orders the parents (the
     schedule's serialization decision, pulled up one level). *)
let base_rules h =
  List.fold_left
    (fun acc (s : History.schedule) ->
      Rel.fold
        (fun o o' acc ->
          let acc =
            if History.is_leaf h o || History.is_leaf h o' then Rel.add o o' acc
            else acc
          in
          if History.conflicts h s.History.sid o o' then begin
            let p = History.parent_tx h o and p' = History.parent_tx h o' in
            if p <> p' then Rel.add p p' acc else acc
          end
          else acc)
        s.History.weak_out acc)
    Rel.empty (History.schedules h)

type variant = Final | No_forgetting | Eager_forgetting

(* One round of upward propagation.  In the Final reading, a pair between
   operations of a common schedule climbs only if that schedule sees a
   conflict (rule 2 applied to observed pairs: the schedule is authoritative
   about commutativity, so non-conflicting orders are forgotten on the way
   up — the Figure-3/4 "conflicts can disappear" mechanism); a
   cross-schedule pair climbs unconditionally (rule 3).  The other variants
   exist for the ablation experiment only.

   Note on the algorithm: rounds of propagation alternating with batch
   transitive closure (SCC condensation) beat an incremental pair-at-a-time
   saturation here — dense observed orders approach n^2 pairs, and the
   batch closure's constants win by 3-4x on the E9 workloads. *)
(* The fixpoint runs entirely in the dense representation: the universe is
   the full node array of the history (identifiers are dense by
   construction), propagation adds parent pairs in place into a copy, and
   each round's transitive closure is the word-parallel kernel.  The
   persistent [Rel.t] is produced once, at the boundary. *)
let fixpoint variant h base =
  (* Propagation only ever adds pairs between ancestors of already-related
     nodes, so the dense universe is the base's nodes closed under
     [parent_tx] — on sparsely conflicting histories this is a small
     fraction of the forest and the closure rounds stay cheap. *)
  let b0 =
    let n = History.n_nodes h in
    let mark = Bytes.make n '\000' in
    let count = ref 0 in
    let rec climb v =
      if Bytes.unsafe_get mark v = '\000' then begin
        Bytes.unsafe_set mark v '\001';
        incr count;
        let p = History.parent_tx h v in
        if p <> v then climb p
      end
    in
    Rel.iter
      (fun a b ->
        climb a;
        climb b)
      base;
    let ids = Array.make (max 1 !count) 0 in
    let j = ref 0 in
    for v = 0 to n - 1 do
      if Bytes.unsafe_get mark v = '\001' then begin
        ids.(!j) <- v;
        incr j
      end
    done;
    let b = Bitrel.of_ids (if !count = 0 then [||] else ids) in
    Rel.iter (fun a b' -> Bitrel.add b a b') base;
    b
  in
  let rounds = ref 0 in
  (* One in-place pass; [false] means nothing new was added: [cur] is still
     transitively closed, so the fixpoint is reached and the confirming
     closure round is skipped.  Pairs added mid-pass are processed either
     this pass or (since the pass reports a change) the next one. *)
  let propagate_dense cur =
    let changed = ref false in
    Bitrel.iter
      (fun a b ->
        let climbs =
          match variant with
          | No_forgetting -> true
          | Final | Eager_forgetting -> (
            match History.common_op_schedule_id h a b with
            | -1 -> true
            | s -> History.conflicts h s a b)
        in
        if climbs then begin
          let p = History.parent_tx h a and p' = History.parent_tx h b in
          if
            p <> p'
            && (variant <> Eager_forgetting
               || History.common_op_schedule_id h p p' = -1)
            && not (Bitrel.mem cur p p')
          then begin
            Bitrel.add cur p p';
            changed := true
          end
        end)
      cur;
    !changed
  in
  let rec go cur =
    incr rounds;
    if propagate_dense cur then go (Bitrel.transitive_closure cur) else cur
  in
  let r = go (Bitrel.transitive_closure b0) in
  (Rel.of_bitrel r, !rounds)

let compute_with ?(metrics = Repro_obs.Metrics.null) variant h =
  let base_obs = base_rules h in
  let base_obs =
    match variant with
    | Final | No_forgetting -> base_obs
    | Eager_forgetting ->
      (* Rule-2 target pairs between same-schedule operations are dropped
         from the base too. *)
      Rel.filter
        (fun a b ->
          History.is_leaf h a || History.is_leaf h b
          || History.common_op_schedule h a b = None)
        base_obs
  in
  let t0 = if Repro_obs.Metrics.enabled metrics then Sys.time () else 0.0 in
  let obs, rounds = fixpoint variant h base_obs in
  if Repro_obs.Metrics.enabled metrics then begin
    let module M = Repro_obs.Metrics in
    M.observe metrics "compc.observed_wall_s" (Sys.time () -. t0);
    M.set metrics "compc.obs_base_pairs" (float_of_int (Rel.cardinal base_obs));
    M.set metrics "compc.obs_pairs" (float_of_int (Rel.cardinal obs));
    M.set metrics "compc.obs_rounds" (float_of_int rounds)
  end;
  let inp, inp_strong =
    List.fold_left
      (fun (w, s) (sc : History.schedule) ->
        (Rel.union w sc.History.weak_in, Rel.union s sc.History.strong_in))
      (Rel.empty, Rel.empty) (History.schedules h)
  in
  { obs; inp; inp_strong; base_obs }

let compute ?metrics h = compute_with ?metrics Final h

let conflict h rel a b =
  a <> b
  &&
  match History.common_op_schedule_id h a b with
  | -1 -> Rel.mem a b rel.obs || Rel.mem b a rel.obs
  | s -> History.conflicts h s a b

let conflict_pairs h rel members =
  let elts = Int_set.elements members in
  let rec go acc = function
    | [] -> List.rev acc
    | a :: rest ->
      let acc =
        List.fold_left
          (fun acc b -> if conflict h rel a b then (a, b) :: acc else acc)
          acc rest
      in
      go acc rest
  in
  go [] elts
