open Repro_order
open Repro_model
open Ids
module B = History.Builder

type profile = {
  ops_min : int;
  ops_max : int;
  items : int;
  read_ratio : float;
  root_input_prob : float;
  strong_input_prob : float;
  intra_prob : float;
  intra_strong_prob : float;
}

let default_profile =
  {
    ops_min = 1;
    ops_max = 3;
    items = 3;
    read_ratio = 0.4;
    root_input_prob = 0.1;
    strong_input_prob = 0.2;
    intra_prob = 0.3;
    intra_strong_prob = 0.3;
  }

(* [add] reads and writes its item; [get] reads it.  Raw leaves are listed
   too, so schedules mixing leaves and services judge every pair. *)
let service_table =
  [
    ("w", "w"); ("r", "w"); ("add", "r"); ("add", "w"); ("add", "get"); ("get", "w");
  ]

(* ------------------------------------------------------------------ *)
(* Phase two: log assignment                                           *)
(* ------------------------------------------------------------------ *)

(* A uniformly random linear extension: Kahn's algorithm picking a random
   ready node at each step.  With [stream] the smallest ready identifier is
   picked instead — identifiers are assigned root-major, so the log orders
   operations by root arrival, modelling an execution that grows at the
   end (the shape the incremental monitor is built for) instead of a batch
   interleaving. *)
let linear_extension ?(stream = false) rng rel nodes =
  let indeg = Hashtbl.create 16 in
  List.iter (fun n -> Hashtbl.replace indeg n 0) nodes;
  Rel.iter
    (fun a b ->
      if Hashtbl.mem indeg a && Hashtbl.mem indeg b then
        Hashtbl.replace indeg b (Hashtbl.find indeg b + 1))
    rel;
  let ready = ref (List.filter (fun n -> Hashtbl.find indeg n = 0) nodes) in
  let out = ref [] in
  let count = ref 0 in
  while !ready <> [] do
    let arr = Array.of_list !ready in
    let n =
      if stream then List.fold_left min (List.hd !ready) !ready
      else Prng.pick_arr rng arr
    in
    ready := List.filter (fun x -> x <> n) !ready;
    out := n :: !out;
    incr count;
    Int_set.iter
      (fun m ->
        match Hashtbl.find_opt indeg m with
        | Some d ->
          Hashtbl.replace indeg m (d - 1);
          if d - 1 = 0 then ready := m :: !ready
        | None -> ())
      (Rel.succs rel n)
  done;
  if !count <> List.length nodes then
    invalid_arg "Gen.linear_extension: constraints are cyclic";
  List.rev !out

let populate ?(stream = false) rng history =
  (* Work on the structural skeleton: any previous logs' consequences must
     not constrain the fresh draw. *)
  let proto = Clone.strip_logs history in
  let n_scheds = History.n_schedules proto in
  (* Transaction-pair orders already imposed on each schedule; seeded with
     the proto's input orders (root inputs and intra-order consequences),
     extended top-down with log-derived orders. *)
  let pushed = Array.make n_scheds Rel.empty in
  List.iter
    (fun (s : History.schedule) -> pushed.(s.History.sid) <- s.History.weak_in)
    (History.schedules proto);
  let logs = Array.make n_scheds None in
  let by_level =
    List.sort
      (fun a b -> compare (History.level proto b) (History.level proto a))
      (List.init n_scheds Fun.id)
  in
  List.iter
    (fun sid ->
      let ops = History.ops_of_schedule proto sid in
      (* Orders imposed on this schedule compose transitively, including
         across pairs pushed by different clients. *)
      pushed.(sid) <- Rel.transitive_closure pushed.(sid);
      (* Constraints the log must respect: strong output obligations (strong
         input expansions and strong intra orders; these never depend on
         logs, so the proto's relation is definitive), intra-transaction
         orders, and conflicting operations of pushed-ordered
         transactions. *)
      let constraints =
        Int_set.fold
          (fun t acc -> Rel.union acc (History.node proto t).History.intra_weak)
          (History.schedule proto sid).History.transactions
          (History.schedule proto sid).History.strong_out
      in
      let constraints = ref constraints in
      List.iter
        (fun o ->
          List.iter
            (fun o' ->
              if
                o <> o'
                && History.conflicts proto sid o o'
                && Rel.mem (History.parent_tx proto o) (History.parent_tx proto o')
                     pushed.(sid)
              then constraints := Rel.add o o' !constraints)
            ops)
        ops;
      let log = linear_extension ~stream rng !constraints ops in
      logs.(sid) <- Some log;
      (* Minimal weak output this log induces; push it down (Def. 4.7). *)
      let wmin = ref !constraints in
      let rec pairs = function
        | [] -> ()
        | o :: rest ->
          List.iter
            (fun o' -> if History.conflicts proto sid o o' then wmin := Rel.add o o' !wmin)
            rest;
          pairs rest
      in
      pairs log;
      let wmin = Rel.transitive_closure !wmin in
      Rel.iter
        (fun o o' ->
          match (History.sched_of_tx proto o, History.sched_of_tx proto o') with
          | Some c, Some c' when c = c' -> pushed.(c) <- Rel.add o o' pushed.(c)
          | _ -> ())
        wmin)
    by_level;
  Clone.with_logs proto ~logs:(fun sid -> logs.(sid))

(* ------------------------------------------------------------------ *)
(* Phase one: structures                                               *)
(* ------------------------------------------------------------------ *)

let item rng ~pool ~n = Fmt.str "%s%d" pool (Prng.int rng n)

let reader rng p = Prng.chance rng p.read_ratio

(* Attach read/write leaves implementing a service on [it] to [parent]. *)
let add_leaves b ~parent ~read_only ~it =
  if read_only then ignore (B.leaf b ~parent (Label.read it))
  else begin
    let r = B.leaf b ~parent (Label.read it) in
    let w = B.leaf b ~parent (Label.write it) in
    B.intra_weak b ~a:r ~b:w
  end

(* A leaf label from an ADT family's own vocabulary: observers when
   [ro], updates otherwise, with element/range arguments drawn small so
   argument-sensitive rules ([args], [range]) actually discriminate. *)
let adt_leaf_label rng p f ~ro ~it =
  let value () = Fmt.str "v%d" (Prng.int rng (max 1 p.items)) in
  match f with
  | Adt.Counter ->
    if ro then Label.v ~args:[ it ] "get"
    else Label.v ~args:[ it ] (if Prng.chance rng 0.5 then "inc" else "dec")
  | Adt.Queue ->
    if ro then Label.v ~args:[ it ] "deq"
    else Label.v ~args:[ it; value () ] "enq"
  | Adt.Set ->
    let e = value () in
    if ro then Label.v ~args:[ it; e ] "contains"
    else Label.v ~args:[ it; e ] (if Prng.chance rng 0.5 then "add" else "remove")
  | Adt.Escrow ->
    if ro then Label.v ~args:[ it ] (if Prng.chance rng 0.5 then "put" else "take")
    else
      let lo = Prng.int rng 8 in
      let hi = lo + 1 + Prng.int rng 4 in
      Label.v ~args:[ it; string_of_int lo; string_of_int hi ] "escrow"
  | Adt.Custom d -> (
    match Adt.vocabulary (Adt.Custom d) with
    | [] -> if ro then Label.read it else Label.write it
    | ops -> Label.v ~args:[ it ] (Prng.pick rng ops))

(* One leaf label under [conflict]: the classical read/write draw for the
   page-level specs (byte-compatible with the pre-ADT generators — same
   PRNG draws, so seeds reproduce), the family vocabulary for ADT specs. *)
let leaf_label rng p conflict ~it =
  match conflict with
  | Conflict.Adt f -> adt_leaf_label rng p f ~ro:(reader rng p) ~it
  | _ -> if reader rng p then Label.read it else Label.write it

(* Leaves implementing one service call on [it]: the read/write pair of
   [add_leaves] for page-level specs, a single family operation for ADT
   specs (a semantic operation is atomic at its own level). *)
let add_spec_leaves b rng p ~parent ~conflict ~read_only ~it =
  match conflict with
  | Conflict.Adt f ->
    ignore (B.leaf b ~parent (adt_leaf_label rng p f ~ro:read_only ~it))
  | _ -> add_leaves b ~parent ~read_only ~it

let add_root_inputs b rng p roots =
  let arr = Array.of_list roots in
  let n = Array.length arr in
  for i = 0 to n - 2 do
    if Prng.chance rng p.root_input_prob then begin
      let a = arr.(i) and b' = arr.(i + 1) in
      if Prng.chance rng p.strong_input_prob then B.input_strong b ~a ~b:b'
      else B.input_weak b ~a ~b:b'
    end
  done

let n_ops rng p = p.ops_min + Prng.int rng (p.ops_max - p.ops_min + 1)

(* Weakly or strongly chain some adjacent sibling pairs: the transaction's
   intra-transaction order (Def. 2). *)
let chain_children b rng p kids =
  let arr = Array.of_list kids in
  for i = 0 to Array.length arr - 2 do
    if Prng.chance rng p.intra_prob then
      if Prng.chance rng p.intra_strong_prob then
        B.intra_strong b ~a:arr.(i) ~b:arr.(i + 1)
      else B.intra_weak b ~a:arr.(i) ~b:arr.(i + 1)
  done

let flat ?(profile = default_profile) ?(stream = false)
    ?(conflict = Conflict.Rw) rng ~roots =
  let p = profile in
  let b = B.create () in
  let s = B.schedule b ~conflict "S" in
  let rs =
    List.init roots (fun i ->
        let r = B.root b ~sched:s (Label.v (Fmt.str "T%d" (i + 1))) in
        let kids =
          List.init (n_ops rng p) (fun _ ->
              let it = item rng ~pool:"x" ~n:p.items in
              let lbl = leaf_label rng p conflict ~it in
              B.leaf b ~parent:r lbl)
        in
        chain_children b rng p kids;
        r)
  in
  add_root_inputs b rng p rs;
  populate ~stream rng (B.seal b)

let stack ?(profile = default_profile) ?(stream = false)
    ?(conflict = Conflict.Rw) rng ~levels ~roots =
  if levels < 1 then invalid_arg "Gen.stack: levels must be >= 1";
  let p = profile in
  let b = B.create () in
  let scheds =
    Array.init levels (fun i ->
        (* index 0 = bottom (level 1); [conflict] overrides the bottom,
           operation-level spec only, so an ADT family slots in under the
           unchanged service levels — matched topology by construction. *)
        let conflict = if i = 0 then conflict else Conflict.Table service_table in
        B.schedule b ~conflict (Fmt.str "S%d" (i + 1)))
  in
  (* Transactions of schedule at index [i] have children that are
     transactions of index [i-1] (or leaves when i = 0). *)
  let rec fill parent i =
    (* Children of [parent] (a transaction of index [i]): transactions of
       index [i-1], with leaves at the bottom touching the service's item. *)
    let kids =
      List.init (n_ops rng p) (fun _ ->
          let it = item rng ~pool:(Fmt.str "p%d_" i) ~n:p.items in
          let ro = reader rng p in
          let name = if ro then "get" else "add" in
          let t = B.tx b ~parent ~sched:scheds.(i - 1) (Label.v ~args:[ it ] name) in
          (if i - 1 = 0 then
             add_spec_leaves b rng p ~parent:t ~conflict ~read_only:ro ~it
           else fill t (i - 1));
          t)
    in
    chain_children b rng p kids
  in
  let rs =
    List.init roots (fun j ->
        let r = B.root b ~sched:scheds.(levels - 1) (Label.v (Fmt.str "T%d" (j + 1))) in
        (if levels = 1 then begin
           let kids =
             List.init (n_ops rng p) (fun _ ->
                 let it = item rng ~pool:"x" ~n:p.items in
                 let lbl = leaf_label rng p conflict ~it in
                 B.leaf b ~parent:r lbl)
           in
           chain_children b rng p kids
         end
         else fill r (levels - 1));
        r)
  in
  add_root_inputs b rng p rs;
  populate ~stream rng (B.seal b)

let fork ?(profile = default_profile) ?(stream = false)
    ?(conflict = Conflict.Rw) rng ~branches ~roots =
  if branches < 2 then invalid_arg "Gen.fork: need at least two branches";
  let p = profile in
  let b = B.create () in
  let top = B.schedule b ~conflict:(Conflict.Table service_table) "Fork" in
  let bs =
    Array.init branches (fun i -> B.schedule b ~conflict (Fmt.str "B%d" (i + 1)))
  in
  let rs =
    List.init roots (fun j ->
        let r = B.root b ~sched:top (Label.v (Fmt.str "T%d" (j + 1))) in
        let kids =
          List.init (n_ops rng p) (fun _ ->
              let branch = Prng.int rng branches in
              (* Disjoint pools per branch: cross-branch operations commute,
                 as Def. 23 requires. *)
              let it = item rng ~pool:(Fmt.str "b%d_" branch) ~n:p.items in
              let ro = reader rng p in
              let name = if ro then "get" else "add" in
              let t = B.tx b ~parent:r ~sched:bs.(branch) (Label.v ~args:[ it ] name) in
              add_spec_leaves b rng p ~parent:t ~conflict ~read_only:ro ~it;
              t)
        in
        chain_children b rng p kids;
        r)
  in
  add_root_inputs b rng p rs;
  populate ~stream rng (B.seal b)

let join ?(profile = default_profile) ?(stream = false)
    ?(conflict = Conflict.Rw) rng ~branches ~roots =
  if branches < 2 then invalid_arg "Gen.join: need at least two branches";
  if roots < branches then invalid_arg "Gen.join: need at least one root per branch";
  let p = profile in
  let b = B.create () in
  let bs =
    Array.init branches (fun i ->
        B.schedule b ~conflict:(Conflict.Table service_table) (Fmt.str "J%d" (i + 1)))
  in
  let bottom = B.schedule b ~conflict "SJ" in
  let root_lists = Array.make branches [] in
  for j = 0 to roots - 1 do
    (* Ensure every branch holds at least one root, then spread randomly. *)
    let branch = if j < branches then j else Prng.int rng branches in
    let r = B.root b ~sched:bs.(branch) (Label.v (Fmt.str "T%d" (j + 1))) in
    let kids =
      List.init (n_ops rng p) (fun _ ->
          let it = item rng ~pool:"x" ~n:p.items in
          let ro = reader rng p in
          let name = if ro then "get" else "add" in
          let t = B.tx b ~parent:r ~sched:bottom (Label.v ~args:[ it ] name) in
          add_spec_leaves b rng p ~parent:t ~conflict ~read_only:ro ~it;
          t)
    in
    chain_children b rng p kids;
    root_lists.(branch) <- r :: root_lists.(branch)
  done;
  Array.iter (fun rs -> add_root_inputs b rng p (List.rev rs)) root_lists;
  populate ~stream rng (B.seal b)

let general ?(profile = default_profile) ?(stream = false) ?conflict rng
    ~schedules ~roots =
  if schedules < 1 then invalid_arg "Gen.general: need at least one schedule";
  let p = profile in
  let b = B.create () in
  let leaf_spec =
    Option.value conflict ~default:(Conflict.Table service_table)
  in
  let scheds =
    Array.init schedules (fun i ->
        B.schedule b ~conflict:leaf_spec (Fmt.str "S%d" (i + 1)))
  in
  (* Random invocation DAG on indices: edges only from smaller to larger
     index; every non-source index gets at least one predecessor. *)
  let succs = Array.make schedules [] in
  for j = 1 to schedules - 1 do
    let i = Prng.int rng j in
    succs.(i) <- j :: succs.(i);
    for i' = 0 to j - 1 do
      if i' <> i && Prng.chance rng 0.25 then succs.(i') <- j :: succs.(i')
    done
  done;
  let rec fill parent i depth =
    let kids =
      List.init (n_ops rng p) (fun _ ->
          let make_leaf () =
            let it = item rng ~pool:(Fmt.str "s%d_" i) ~n:p.items in
            let lbl = leaf_label rng p leaf_spec ~it in
            B.leaf b ~parent lbl
          in
          match succs.(i) with
          | [] -> make_leaf ()
          | targets ->
            if depth > 4 || Prng.chance rng 0.3 then make_leaf ()
            else begin
              let j = Prng.pick rng targets in
              let it = item rng ~pool:(Fmt.str "s%d_" j) ~n:p.items in
              let ro = reader rng p in
              let name = if ro then "get" else "add" in
              let t = B.tx b ~parent ~sched:scheds.(j) (Label.v ~args:[ it ] name) in
              fill t j (depth + 1);
              t
            end)
    in
    chain_children b rng p kids
  in
  (* Roots live on source schedules (no incoming invocation edges). *)
  let is_target = Array.make schedules false in
  Array.iter (List.iter (fun j -> is_target.(j) <- true)) succs;
  let sources =
    match List.filter (fun j -> not is_target.(j)) (List.init schedules Fun.id) with
    | [] -> [ 0 ]
    | l -> l
  in
  let assigned =
    List.init roots (fun j ->
        let src = Prng.pick rng sources in
        let r = B.root b ~sched:scheds.(src) (Label.v (Fmt.str "T%d" (j + 1))) in
        fill r src 0;
        (src, r))
  in
  (* Root input orders, per source schedule. *)
  List.iter
    (fun src ->
      let mine = List.filter_map (fun (s, r) -> if s = src then Some r else None) assigned in
      add_root_inputs b rng p mine)
    sources;
  populate ~stream rng (B.seal b)
