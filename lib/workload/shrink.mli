(** Counterexample shrinking for rejected histories.

    A rejected execution out of the generators or the simulator easily has
    hundreds of nodes; the witness cycle only ever involves a handful.  The
    shrinker reduces such a history to a {e 1-minimal} sub-history with the
    same {!Repro_core.Reduction.failure_kind}: delta-debugging over the root
    transactions first (whole composite transactions are the cheap big
    bites), then greedy subtree drops over the remaining operations, until
    no single further drop preserves the failure.

    Sub-histories are built by {!restrict}: identifiers are re-packed
    densely (the builder demands it), so the shrunken history's ids do not
    match the original's — render it, don't cross-reference it.  Purely a
    forensic tool: nothing on the accept path calls into it. *)

open Repro_order.Ids
open Repro_model

val restrict : History.t -> keep:Int_set.t -> History.t
(** The sub-history induced by [keep], closed downward: a node survives iff
    it and all its ancestors are in [keep] (dropping a node drops its whole
    subtree).  Surviving nodes are renumbered densely in the original id
    order; schedules all survive (possibly emptied), [Explicit] conflict
    pairs are remapped, intra/input orders and logs are restricted.  A
    schedule with a log gets the restricted log and re-derived minimal
    outputs; a schedule described by explicit output orders keeps their
    restriction (mirroring {!Clone.with_logs}'s staleness rule). *)

type result = {
  history : History.t;  (** The 1-minimal (within budget) sub-history. *)
  kind : string;
      (** The preserved {!Repro_core.Reduction.failure_kind} of the original
          rejection — the shrunken history reproduces exactly this kind. *)
  probes : int;  (** Candidate sub-histories checked. *)
  dropped_roots : int;  (** Root subtrees removed. *)
  dropped_nodes : int;  (** Total nodes removed, including root subtrees. *)
}

val shrink : ?max_probes:int -> History.t -> result option
(** [shrink h] is [None] when [h] is accepted by Comp-C; otherwise a
    reduced sub-history that still validates against the model and is
    rejected with the same failure kind.  Every candidate costs one
    validation plus one Comp-C check; [max_probes] (default 2000) bounds
    the total.  If the budget runs out the current — still reproducing,
    possibly not 1-minimal — history is returned. *)
