(** Rebuilding histories with replaced execution logs.

    The random generators construct the {e structure} of a composite
    execution first (forest, schedules, intra-transaction orders, root input
    orders) and only then choose each schedule's execution log, because a
    valid log must respect input orders that are themselves derived from the
    clients' logs.  This module re-runs {!Repro_model.History.Builder} over
    an existing history, preserving all node and schedule identifiers, with
    new logs attached — after which [seal] re-derives output and input
    orders consistently. *)

open Repro_model

val with_logs : History.t -> logs:(History.sched_id -> Repro_order.Ids.id list option) -> History.t
(** [with_logs h ~logs] is [h] rebuilt with [logs sid] as the execution log
    of schedule [sid] ([None] keeps the schedule's existing log).  Explicit
    weak output orders beyond those derivable from logs, intra-transaction
    orders, and root input orders are preserved. *)

val copy : History.t -> History.t
(** Identity rebuild; useful to assert builder round-tripping. *)

val strip_logs : History.t -> History.t
(** Rebuild with no logs and no explicit output orders: only the structure,
    intra-transaction orders, and root input orders survive, and the derived
    orders are recomputed from those.  {!Gen.populate} uses this to start
    from a structurally clean slate. *)

val with_conflicts :
  History.t -> conflicts:(History.sched_id -> Conflict.spec option) -> History.t
(** [with_conflicts h ~conflicts] is [h] with schedule [sid]'s conflict
    spec replaced by [conflicts sid] ([None] keeps the existing spec):
    same forest, labels, intra-transaction orders, root input orders and
    logs, with explicit output orders dropped so [seal] re-derives them
    under the new specs.  Changing to a spec with {e more} conflicts can
    make the kept logs inconsistent with newly derived obligations;
    compose with {!Gen.populate} to redraw the logs under the new specs —
    the matched-topology recipe of the semantic-acceptance experiment. *)
