(** Random composite executions.

    These generators produce {e valid} composite executions (every schedule
    individually satisfies Def. 3) that are nevertheless free to be globally
    incorrect: each schedule serializes its own operations independently, so
    cross-schedule interleavings routinely create observed-order cycles.
    That mix is exactly what the theorem-validation experiments need — a
    population on which SCC/FCC/JCC and Comp-C can agree or disagree.

    Generation is two-phase.  Phase one builds the structure: the forest of
    transactions with semantically meaningful labels (["add"]/["get"]
    services over item pools, implemented by ["r"]/["w"] leaves, so that
    lower-level conflicts can {e disappear} at higher levels — two [add]s on
    one item conflict as reads/writes but commute as services), plus random
    intra-transaction orders and root input orders.  Phase two walks the
    schedules top-down and draws each schedule's execution log as a random
    linear extension of the constraints that schedule is obliged to respect
    (intra-transaction orders and conflicting operations of input-ordered
    transactions), then pushes the resulting output order down as input
    orders — mirroring Def. 4.7 — before drawing the next level's logs. *)

open Repro_model

type profile = {
  ops_min : int;  (** Minimum children per transaction. *)
  ops_max : int;  (** Maximum children per transaction. *)
  items : int;  (** Item-pool size per schedule; smaller pools mean denser conflicts. *)
  read_ratio : float;  (** Probability that a generated operation is a reader. *)
  root_input_prob : float;  (** Probability of weakly input-ordering a root pair. *)
  strong_input_prob : float;  (** Probability that such an order is strong. *)
  intra_prob : float;
      (** Probability of intra-transaction-ordering an adjacent sibling pair
          (Def. 2). *)
  intra_strong_prob : float;  (** Probability that such an intra order is strong. *)
}

val default_profile : profile
(** [{ ops_min = 1; ops_max = 3; items = 3; read_ratio = 0.4;
      root_input_prob = 0.1; strong_input_prob = 0.2;
      intra_prob = 0.3; intra_strong_prob = 0.3 }] *)

val service_table : (string * string) list
(** Conflicting service-name pairs for internal schedules: [add] behaves as
    a read-write on its item, [get] as a read; [r]/[w] leaves are included
    so mixed schedules judge them correctly. *)

val populate : ?stream:bool -> Prng.t -> History.t -> History.t
(** Phase two alone: draw fresh execution logs (top-down, as described
    above) for an already-built structure and rebuild the history.  The
    input's own logs are ignored.

    With [stream] (default [false]) each log is the {e identifier-minimal}
    linear extension of its constraints instead of a uniformly random one.
    Identifiers are assigned root-major, so operations of earlier roots
    execute before operations of later ones wherever the constraints
    allow: the history looks like an execution that grew at the end, one
    root at a time — the shape the simulator emits and the incremental
    {!Repro_core.Monitor} is built for — rather than a batch
    interleaving.  All generators below pass [stream] through. *)

val flat :
  ?profile:profile -> ?stream:bool -> ?conflict:Conflict.spec -> Prng.t ->
  roots:int -> History.t
(** One leaf schedule holding all roots.  [conflict] (default {!Conflict.Rw})
    is the schedule's spec; leaf labels are drawn from its vocabulary —
    read/write for the page-level specs (identical PRNG draws to the
    pre-ADT generators, so seeds reproduce), family operations for
    {!Conflict.Adt} specs (counter [inc]/[dec]/[get], queue [enq]/[deq],
    set [add]/[remove]/[contains], escrow [escrow]/[put]/[take]). *)

val stack :
  ?profile:profile -> ?stream:bool -> ?conflict:Conflict.spec -> Prng.t ->
  levels:int -> roots:int -> History.t
(** An n-level stack (Def. 21).  [conflict] overrides the {e bottom}
    (operation-level) schedule's spec only; the service levels above keep
    {!service_table}, so swapping a page-level spec for an ADT family
    compares at a matched topology. *)

val fork :
  ?profile:profile -> ?stream:bool -> ?conflict:Conflict.spec -> Prng.t ->
  branches:int -> roots:int -> History.t
(** A fork (Def. 23): the branches own disjoint item pools, so operations of
    different branches commute as the definition requires.  [conflict]
    (default {!Conflict.Rw}) is the branch schedules' spec. *)

val join :
  ?profile:profile -> ?stream:bool -> ?conflict:Conflict.spec -> Prng.t ->
  branches:int -> roots:int -> History.t
(** A join (Def. 25): all branches delegate to one shared leaf schedule,
    whose spec [conflict] (default {!Conflict.Rw}) overrides. *)

val general :
  ?profile:profile -> ?stream:bool -> ?conflict:Conflict.spec -> Prng.t ->
  schedules:int -> roots:int -> History.t
(** An arbitrary recursion-free configuration: a random invocation DAG whose
    source schedules hold the roots and whose transactions mix leaf
    operations with subtransactions on randomly chosen invoked schedules.
    [conflict] (default {!service_table}) replaces {e every} schedule's
    spec. *)
