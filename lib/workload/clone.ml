open Repro_order
open Repro_model
module B = History.Builder

let rebuild ?spec h ~drop_logs ~logs ~keep_explicit_outputs =
  let spec =
    match spec with
    | Some f -> f
    | None -> fun (s : History.schedule) -> s.History.conflict
  in
  let b = B.create () in
  (* Recreate schedules in sid order so identifiers are preserved. *)
  List.iter
    (fun (s : History.schedule) ->
      let sid = B.schedule b ~conflict:(spec s) s.History.sname in
      assert (sid = s.History.sid))
    (History.schedules h);
  (* Recreate nodes in id order: a parent always has a smaller id than its
     children (the builder allocates ids on declaration), so parents exist
     by the time children are declared. *)
  for i = 0 to History.n_nodes h - 1 do
    let n = History.node h i in
    let id =
      match (n.History.parent, n.History.sched) with
      | None, Some sched -> B.root b ~sched n.History.label
      | Some parent, Some sched -> B.tx b ~parent ~sched n.History.label
      | Some parent, None -> B.leaf b ~parent n.History.label
      | None, None -> assert false
    in
    assert (id = i)
  done;
  (* Intra-transaction orders. *)
  for i = 0 to History.n_nodes h - 1 do
    let n = History.node h i in
    Rel.iter (fun a b' -> B.intra_weak b ~a ~b:b') n.History.intra_weak;
    Rel.iter (fun a b' -> B.intra_strong b ~a ~b:b') n.History.intra_strong
  done;
  List.iter
    (fun (s : History.schedule) ->
      (* Root input orders (non-root input orders are re-derived by seal). *)
      let is_root n = History.is_root h n in
      Rel.iter
        (fun a b' -> if is_root a && is_root b' then B.input_weak b ~a ~b:b')
        s.History.weak_in;
      Rel.iter
        (fun a b' -> if is_root a && is_root b' then B.input_strong b ~a ~b:b')
        s.History.strong_in;
      (* Logs: replacement, or the original. *)
      (match logs s.History.sid with
      | Some log -> B.log b ~sched:s.History.sid log
      | None ->
        if (not drop_logs) && s.History.log <> [] then
          B.log b ~sched:s.History.sid s.History.log);
      if keep_explicit_outputs s.History.sid then begin
        Rel.iter (fun a b' -> B.weak_out b ~a ~b:b') s.History.weak_out;
        Rel.iter (fun a b' -> B.strong_out b ~a ~b:b') s.History.strong_out
      end)
    (History.schedules h);
  B.seal b

let with_logs h ~logs =
  (* A schedule that receives a fresh log must not keep its stale explicit
     weak output order (seal only derives from the log when nothing explicit
     is present), while schedules keeping their log keep their outputs. *)
  rebuild h ~drop_logs:false ~logs ~keep_explicit_outputs:(fun sid -> logs sid = None)

let copy h =
  rebuild h ~drop_logs:false ~logs:(fun _ -> None) ~keep_explicit_outputs:(fun _ -> true)

let strip_logs h =
  rebuild h ~drop_logs:true ~logs:(fun _ -> None) ~keep_explicit_outputs:(fun _ -> false)

let with_conflicts h ~conflicts =
  rebuild h
    ~spec:(fun (s : History.schedule) ->
      match conflicts s.History.sid with
      | Some c -> c
      | None -> s.History.conflict)
    ~drop_logs:false
    ~logs:(fun _ -> None)
    ~keep_explicit_outputs:(fun _ -> false)
