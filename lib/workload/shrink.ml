open Repro_order
open Repro_model
open Ids
module B = History.Builder
module Compc = Repro_core.Compc
module Reduction = Repro_core.Reduction

let restrict h ~keep =
  let n = History.n_nodes h in
  (* Downward closure: parents have smaller ids than their children (builder
     allocation order), so one ascending pass settles survival. *)
  let kept = Array.make n false in
  for i = 0 to n - 1 do
    kept.(i) <-
      Int_set.mem i keep
      && (match History.parent h i with None -> true | Some p -> kept.(p))
  done;
  let map = Array.make n (-1) in
  let next = ref 0 in
  for i = 0 to n - 1 do
    if kept.(i) then begin
      map.(i) <- !next;
      incr next
    end
  done;
  let both x y = x < n && y < n && kept.(x) && kept.(y) in
  let b = B.create () in
  List.iter
    (fun (s : History.schedule) ->
      let conflict =
        match s.History.conflict with
        | Conflict.Explicit pairs ->
          (* Explicit specs carry node ids; pairs with a dropped endpoint
             are gone along with the endpoint. *)
          Conflict.Explicit
            (List.filter_map
               (fun (x, y) ->
                 if both x y then Some (map.(x), map.(y)) else None)
               pairs)
        | spec -> spec
      in
      let sid = B.schedule b ~conflict s.History.sname in
      assert (sid = s.History.sid))
    (History.schedules h);
  for i = 0 to n - 1 do
    if kept.(i) then begin
      let nd = History.node h i in
      let id =
        match (nd.History.parent, nd.History.sched) with
        | None, Some sched -> B.root b ~sched nd.History.label
        | Some p, Some sched -> B.tx b ~parent:map.(p) ~sched nd.History.label
        | Some p, None -> B.leaf b ~parent:map.(p) nd.History.label
        | None, None -> assert false
      in
      assert (id = map.(i))
    end
  done;
  for i = 0 to n - 1 do
    if kept.(i) then begin
      let nd = History.node h i in
      Rel.iter
        (fun x y -> if both x y then B.intra_weak b ~a:map.(x) ~b:map.(y))
        nd.History.intra_weak;
      Rel.iter
        (fun x y -> if both x y then B.intra_strong b ~a:map.(x) ~b:map.(y))
        nd.History.intra_strong
    end
  done;
  List.iter
    (fun (s : History.schedule) ->
      (* Root input orders; non-root input orders are re-derived by seal. *)
      let root_pair x y = History.is_root h x && History.is_root h y in
      Rel.iter
        (fun x y ->
          if root_pair x y && both x y then B.input_weak b ~a:map.(x) ~b:map.(y))
        s.History.weak_in;
      Rel.iter
        (fun x y ->
          if root_pair x y && both x y then
            B.input_strong b ~a:map.(x) ~b:map.(y))
        s.History.strong_in;
      if s.History.log <> [] then begin
        (* The shrunken execution's log: the kept operations in the original
           serialization order.  Explicit outputs are dropped and re-derived
           from it — a stale output restriction next to a changed log is the
           same hazard {!Clone.with_logs} guards against. *)
        match
          List.filter_map
            (fun v -> if kept.(v) then Some map.(v) else None)
            s.History.log
        with
        | [] -> ()
        | log -> B.log b ~sched:s.History.sid log
      end
      else begin
        Rel.iter
          (fun x y -> if both x y then B.weak_out b ~a:map.(x) ~b:map.(y))
          s.History.weak_out;
        Rel.iter
          (fun x y -> if both x y then B.strong_out b ~a:map.(x) ~b:map.(y))
          s.History.strong_out
      end)
    (History.schedules h);
  B.seal b

type result = {
  history : History.t;
  kind : string;
  probes : int;
  dropped_roots : int;
  dropped_nodes : int;
}

let failure_kind_of h =
  match (Compc.check h).Compc.certificate.Reduction.outcome with
  | Ok _ -> None
  | Error f -> Some (Reduction.failure_kind f)

let subtree h r = Int_set.add r (History.descendants h r)

let keep_of_roots h roots =
  List.fold_left (fun acc r -> Int_set.union acc (subtree h r)) Int_set.empty roots

let all_nodes h =
  Int_set.of_list (List.init (History.n_nodes h) (fun i -> i))

(* Classic ddmin over a list: try removing complement chunks at increasing
   granularity until no chunk can go.  [test] decides whether a {e subset}
   still reproduces; the result is 1-minimal w.r.t. removing any single
   element [test] was allowed to probe within the budget. *)
let ddmin test xs =
  let remove_chunk xs start len =
    List.filteri (fun i _ -> i < start || i >= start + len) xs
  in
  let rec go xs n =
    let len = List.length xs in
    if len <= 1 || n > len then xs
    else begin
      let chunk = (len + n - 1) / n in
      let rec try_chunks start =
        if start >= len then None
        else
          let candidate = remove_chunk xs start (min chunk (len - start)) in
          if candidate <> [] && test candidate then Some candidate
          else try_chunks (start + chunk)
      in
      match try_chunks 0 with
      | Some candidate -> go candidate (max 2 (n - 1))
      | None -> if n >= len then xs else go xs (min len (2 * n))
    end
  in
  go xs 2

let shrink ?(max_probes = 2000) h =
  match failure_kind_of h with
  | None -> None
  | Some kind ->
    let probes = ref 0 in
    let reproduces cand =
      Validate.check cand = [] && failure_kind_of cand = Some kind
    in
    (* Probe a keep-set against the current history; [None] when the budget
       is spent or the candidate loses the failure. *)
    let try_keep cur keep =
      if !probes >= max_probes then None
      else begin
        incr probes;
        let cand = restrict cur ~keep in
        if reproduces cand then Some cand else None
      end
    in
    (* Phase 1 on each round: ddmin over the root list (root ids are stable
       while the base history [cur] is fixed; the survivor set is committed
       once, at the end of the phase). *)
    let ddmin_roots cur =
      let roots = History.roots cur in
      let surviving =
        ddmin
          (fun subset -> try_keep cur (keep_of_roots cur subset) <> None)
          roots
      in
      if List.length surviving = List.length roots then cur
      else restrict cur ~keep:(keep_of_roots cur surviving)
    in
    (* Phase 2: greedy single-subtree drops over non-root nodes.  Each
       commit renumbers ids, so restart the scan on the new history; the
       scan runs high-to-low so freshly declared (deep) nodes go first. *)
    let rec drop_subtrees cur =
      let n = History.n_nodes cur in
      let rec scan v =
        if v < 0 then cur
        else if History.is_root cur v then scan (v - 1)
        else
          match try_keep cur (Int_set.diff (all_nodes cur) (subtree cur v)) with
          | Some cand -> drop_subtrees cand
          | None -> scan (v - 1)
      in
      scan (n - 1)
    in
    (* Alternate until a whole round changes nothing: dropping operations
       can unlock further root drops and vice versa.  At the fixpoint no
       single root subtree and no single node subtree can be removed — the
       1-minimality the caller gets (modulo an exhausted budget). *)
    let rec rounds cur =
      let cur' = drop_subtrees (ddmin_roots cur) in
      if History.n_nodes cur' = History.n_nodes cur || !probes >= max_probes
      then cur'
      else rounds cur'
    in
    let final = rounds h in
    Some
      {
        history = final;
        kind;
        probes = !probes;
        dropped_roots =
          List.length (History.roots h) - List.length (History.roots final);
        dropped_nodes = History.n_nodes h - History.n_nodes final;
      }
