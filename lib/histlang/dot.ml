open Repro_model

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let node_label h i = escape (Fmt.str "%a" (History.pp_node h) i)

(* Stable pastel fill per schedule. *)
let fill sid =
  let palette =
    [| "#cfe2ff"; "#d1e7dd"; "#fff3cd"; "#f8d7da"; "#e2d9f3"; "#d2f4ea"; "#ffe5d0" |]
  in
  palette.(sid mod Array.length palette)

let highlight_color = "#c0392b"

let forest ?obs ?(highlight_nodes = Repro_order.Ids.Int_set.empty)
    ?(highlight_edges = []) ?(annotate = fun _ -> None) h =
  let buf = Buffer.create 1024 in
  let pf fmt = Fmt.kstr (Buffer.add_string buf) fmt in
  pf "digraph forest {\n  rankdir=TB;\n  node [fontname=\"Helvetica\"];\n";
  for i = 0 to History.n_nodes h - 1 do
    let shape, style =
      if History.is_leaf h i then ("box", "filled")
      else if History.is_root h i then ("doubleoctagon", "filled")
      else ("ellipse", "filled")
    in
    let color =
      match History.sched_of_tx h i with Some s -> fill s | None -> "#f5f5f5"
    in
    let sched_note =
      match History.sched_of_tx h i with
      | Some s -> Fmt.str "\\n@%s" (escape (History.schedule h s).History.sname)
      | None -> ""
    in
    let note =
      match annotate i with
      | Some text -> Fmt.str "\\n%s" (escape text)
      | None -> ""
    in
    let extra =
      if Repro_order.Ids.Int_set.mem i highlight_nodes then
        Fmt.str ", color=\"%s\", penwidth=2.5" highlight_color
      else ""
    in
    pf "  n%d [label=\"%s%s%s\", shape=%s, style=%s, fillcolor=\"%s\"%s];\n" i
      (node_label h i) sched_note note shape style color extra
  done;
  for i = 0 to History.n_nodes h - 1 do
    List.iter (fun c -> pf "  n%d -> n%d;\n" i c) (History.children h i)
  done;
  let highlighted a b = List.mem (a, b) highlight_edges in
  (match obs with
  | None -> ()
  | Some r ->
    (* Render the transitive reduction: the closure would bury the trees in
       implied edges.  Pairs drawn below as highlights are skipped here so
       the bold edge is not doubled by a dashed one. *)
    Repro_order.Rel.iter
      (fun a b ->
        if not (highlighted a b) then
          pf "  n%d -> n%d [style=dashed, color=\"%s\", constraint=false];\n" a
            b highlight_color)
      (Repro_order.Rel.transitive_reduction r));
  List.iter
    (fun (a, b) ->
      pf
        "  n%d -> n%d [style=bold, color=\"%s\", penwidth=2.0, \
         constraint=false];\n"
        a b highlight_color)
    highlight_edges;
  pf "}\n";
  Buffer.contents buf

let invocation_graph h =
  let buf = Buffer.create 256 in
  let pf fmt = Fmt.kstr (Buffer.add_string buf) fmt in
  pf "digraph invocations {\n  rankdir=TB;\n  node [fontname=\"Helvetica\", shape=component, style=filled];\n";
  List.iter
    (fun (s : History.schedule) ->
      pf "  s%d [label=\"%s\\nlevel %d\", fillcolor=\"%s\"];\n" s.History.sid
        (escape s.History.sname)
        (History.level h s.History.sid)
        (fill s.History.sid))
    (History.schedules h);
  Repro_order.Rel.iter
    (fun a b -> pf "  s%d -> s%d;\n" a b)
    (History.invocation_graph h);
  pf "}\n";
  Buffer.contents buf
