open Repro_model
module B = History.Builder

type error = { line : int; message : string }

exception Parse_error of error

let pp_error ppf e = Fmt.pf ppf "line %d: %s" e.line e.message

let fail line fmt = Fmt.kstr (fun message -> raise (Parse_error { line; message })) fmt

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)
(* ------------------------------------------------------------------ *)

type token =
  | Name of string
  | Punct of char (* @ ( ) , / : < = ; *)
  | Bang

type ltoken = { tok : token; line : int }

let is_name_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '.' || c = '\'' || c = '-'

let lex src =
  let n = String.length src in
  let toks = ref [] in
  let line = ref 1 in
  let i = ref 0 in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then begin
      incr line;
      incr i
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '#' then begin
      while !i < n && src.[!i] <> '\n' do
        incr i
      done
    end
    else if is_name_char c then begin
      let start = !i in
      while !i < n && is_name_char src.[!i] do
        incr i
      done;
      toks := { tok = Name (String.sub src start (!i - start)); line = !line } :: !toks
    end
    else if c = '!' then begin
      toks := { tok = Bang; line = !line } :: !toks;
      incr i
    end
    else if String.contains "@(),/:<=;" c then begin
      toks := { tok = Punct c; line = !line } :: !toks;
      incr i
    end
    else fail !line "unexpected character %C" c
  done;
  List.rev !toks

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

(* AST: items in source order.  Node identifiers are assigned by
   declaration order, which lets explicit conflict pairs be resolved after
   the scan. *)
type ast_spec =
  | Simple of Conflict.spec
  | Explicit_names of (string * string) list * int (* line *)

type item =
  | I_schedule of string * ast_spec
  | I_root of string * string * Label.t * int
  | I_tx of string * string * string * Label.t * int
  | I_leaf of string * string * Label.t * int
  | I_order of bool * string * string * int (* strong, a, b, line *)
  | I_intra of bool * string * string * int
  | I_input of bool * string * string * int
  | I_log of string * string list * int

type pstate = { mutable toks : ltoken list }

let peek st = match st.toks with [] -> None | t :: _ -> Some t

let next st =
  match st.toks with
  | [] -> fail 0 "unexpected end of input"
  | t :: rest ->
    st.toks <- rest;
    t

let expect_name st what =
  let t = next st in
  match t.tok with
  | Name s -> (s, t.line)
  | _ -> fail t.line "expected %s" what

let expect_punct st c =
  let t = next st in
  match t.tok with
  | Punct c' when c = c' -> ()
  | Name n -> fail t.line "expected %C, found %S" c n
  | _ -> fail t.line "expected %C" c

(* label := NAME [ "(" args ")" ] *)
let parse_label st =
  let name, l = expect_name st "a label" in
  match peek st with
  | Some { tok = Punct '('; _ } ->
    ignore (next st);
    let rec args acc =
      let t = next st in
      match t.tok with
      | Punct ')' -> List.rev acc
      | Name a -> (
        let t2 = next st in
        match t2.tok with
        | Punct ',' -> args (a :: acc)
        | Punct ')' -> List.rev (a :: acc)
        | _ -> fail t2.line "expected ',' or ')' in label arguments")
      | _ -> fail t.line "expected argument or ')'"
    in
    (Label.v ~args:(args []) name, l)
  | _ -> (Label.v name, l)

let parse_name_pairs st =
  expect_punct st '(';
  let rec go acc =
    let t = next st in
    match t.tok with
    | Punct ')' -> List.rev acc
    | Name a ->
      expect_punct st '/';
      let b, _ = expect_name st "a pair member" in
      (match peek st with
      | Some { tok = Punct ','; _ } -> ignore (next st)
      | _ -> ());
      go ((a, b) :: acc)
    | _ -> fail t.line "expected name pair or ')'"
  in
  go []

let parse_cond line = function
  | "always" -> Adt.Always
  | "item" -> Adt.Item
  | "args" -> Adt.Args
  | "range" -> Adt.Range
  | s -> fail line "unknown commutativity condition %S (expected always, item, args or range)" s

(* adt decl := "(" [class ("," class)*] [";" [rule ("," rule)*]] ")"
   class    := NAME "=" NAME ("/" NAME)*
   rule     := NAME "/" NAME "=" cond *)
let parse_adt_decl st =
  expect_punct st '(';
  let rec ops acc =
    let o, _ = expect_name st "an operation name" in
    match peek st with
    | Some { tok = Punct '/'; _ } ->
      ignore (next st);
      ops (o :: acc)
    | _ -> List.rev (o :: acc)
  in
  let rec classes acc =
    match peek st with
    | Some { tok = Punct ')'; _ } ->
      ignore (next st);
      (List.rev acc, false)
    | Some { tok = Punct ';'; _ } ->
      ignore (next st);
      (List.rev acc, true)
    | _ ->
      let cls, _ = expect_name st "a class name" in
      expect_punct st '=';
      let members = ops [] in
      let acc = (cls, members) :: acc in
      let t = next st in
      (match t.tok with
      | Punct ',' -> classes acc
      | Punct ';' -> (List.rev acc, true)
      | Punct ')' -> (List.rev acc, false)
      | _ -> fail t.line "expected ',', ';' or ')' in adt classes")
  in
  let classes, have_rules = classes [] in
  let rec rules acc =
    match peek st with
    | Some { tok = Punct ')'; _ } ->
      ignore (next st);
      List.rev acc
    | _ ->
      let x, _ = expect_name st "a class name" in
      expect_punct st '/';
      let y, _ = expect_name st "a class name" in
      expect_punct st '=';
      let c, lc = expect_name st "a commutativity condition" in
      let acc = (x, y, parse_cond lc c) :: acc in
      (match peek st with
      | Some { tok = Punct ','; _ } -> ignore (next st)
      | _ -> ());
      rules acc
  in
  let rules = if have_rules then rules [] else [] in
  { Adt.classes; rules }

let parse_spec st line =
  let s, l = expect_name st "a conflict specification" in
  match s with
  | "rw" -> Simple Conflict.Rw
  | "never" -> Simple Conflict.Never
  | "always" -> Simple Conflict.Always
  | "same-item" -> Simple Conflict.Same_item
  | "table" -> Simple (Conflict.Table (parse_name_pairs st))
  | "explicit" -> Explicit_names (parse_name_pairs st, line)
  | "counter" -> Simple (Conflict.Adt Adt.Counter)
  | "queue" -> Simple (Conflict.Adt Adt.Queue)
  | "set" -> Simple (Conflict.Adt Adt.Set)
  | "escrow" -> Simple (Conflict.Adt Adt.Escrow)
  | "adt" -> Simple (Conflict.Adt (Adt.Custom (parse_adt_decl st)))
  | _ -> fail (max line l) "unknown conflict specification %S" s

let parse_bang st =
  match peek st with
  | Some { tok = Bang; _ } ->
    ignore (next st);
    true
  | _ -> false

let parse_rel_pair st =
  expect_punct st ':';
  let a, _ = expect_name st "a node" in
  expect_punct st '<';
  let b, _ = expect_name st "a node" in
  (a, b)

let keywords = [ "schedule"; "root"; "tx"; "leaf"; "order"; "intra"; "input"; "log" ]

let rec parse_items st acc =
  match peek st with
  | None -> List.rev acc
  | Some { tok; line } ->
    let item =
      match tok with
      | Name "schedule" ->
        ignore (next st);
        let name, l = expect_name st "a schedule name" in
        let kw, lk = expect_name st "'conflict'" in
        if kw <> "conflict" then fail lk "expected 'conflict'";
        I_schedule (name, parse_spec st l)
      | Name "root" ->
        ignore (next st);
        let name, _ = expect_name st "a node name" in
        expect_punct st '@';
        let sname, _ = expect_name st "a schedule name" in
        let lbl, l = parse_label st in
        I_root (name, sname, lbl, l)
      | Name "tx" ->
        ignore (next st);
        let name, _ = expect_name st "a node name" in
        expect_punct st '@';
        let sname, _ = expect_name st "a schedule name" in
        let kw, lk = expect_name st "'parent'" in
        if kw <> "parent" then fail lk "expected 'parent'";
        let pname, _ = expect_name st "a parent node" in
        let lbl, l = parse_label st in
        I_tx (name, sname, pname, lbl, l)
      | Name "leaf" ->
        ignore (next st);
        let name, _ = expect_name st "a node name" in
        let kw, lk = expect_name st "'parent'" in
        if kw <> "parent" then fail lk "expected 'parent'";
        let pname, _ = expect_name st "a parent node" in
        let lbl, l = parse_label st in
        I_leaf (name, pname, lbl, l)
      | Name "order" ->
        ignore (next st);
        let strong = parse_bang st in
        let _sname, l = expect_name st "a schedule name" in
        let a, b = parse_rel_pair st in
        I_order (strong, a, b, l)
      | Name "intra" ->
        ignore (next st);
        let strong = parse_bang st in
        let a, b = parse_rel_pair st in
        I_intra (strong, a, b, line)
      | Name "input" ->
        ignore (next st);
        let strong = parse_bang st in
        let a, b = parse_rel_pair st in
        I_input (strong, a, b, line)
      | Name "log" ->
        ignore (next st);
        let sname, l = expect_name st "a schedule name" in
        expect_punct st ':';
        let rec ops acc =
          match peek st with
          | Some { tok = Name n; _ } when not (List.mem n keywords) ->
            ignore (next st);
            ops (n :: acc)
          | _ -> List.rev acc
        in
        I_log (sname, ops [], l)
      | Bang -> fail line "unexpected '!'"
      | Name other -> fail line "unknown item %S" other
      | Punct c -> fail line "unexpected %C" c
    in
    parse_items st (item :: acc)

let build items =
  let b = B.create () in
  (* Nodes are declared in order; assign their identifiers up front so that
     explicit conflict specifications can reference later nodes. *)
  let node_ids = Hashtbl.create 64 in
  let counter = ref 0 in
  List.iter
    (fun item ->
      match item with
      | I_root (name, _, _, line) | I_tx (name, _, _, _, line) | I_leaf (name, _, _, line) ->
        if Hashtbl.mem node_ids name then fail line "duplicate node %S" name;
        Hashtbl.replace node_ids name !counter;
        incr counter
      | I_schedule _ | I_order _ | I_intra _ | I_input _ | I_log _ -> ())
    items;
  let node line name =
    match Hashtbl.find_opt node_ids name with
    | Some id -> id
    | None -> fail line "unknown node %S" name
  in
  let scheds = Hashtbl.create 8 in
  let sched line name =
    match Hashtbl.find_opt scheds name with
    | Some id -> id
    | None -> fail line "unknown schedule %S" name
  in
  List.iter
    (fun item ->
      match item with
      | I_schedule (name, spec) ->
        let conflict =
          match spec with
          | Simple c -> c
          | Explicit_names (pairs, line) ->
            Conflict.Explicit (List.map (fun (a, b) -> (node line a, node line b)) pairs)
        in
        Hashtbl.replace scheds name (B.schedule b ~conflict name)
      | I_root (name, sname, lbl, line) ->
        let id = B.root b ~sched:(sched line sname) lbl in
        assert (id = Hashtbl.find node_ids name)
      | I_tx (name, sname, pname, lbl, line) ->
        let id = B.tx b ~parent:(node line pname) ~sched:(sched line sname) lbl in
        assert (id = Hashtbl.find node_ids name)
      | I_leaf (name, pname, lbl, line) ->
        let id = B.leaf b ~parent:(node line pname) lbl in
        assert (id = Hashtbl.find node_ids name)
      | I_order (strong, a, b', line) ->
        let a = node line a and b' = node line b' in
        if strong then B.strong_out b ~a ~b:b' else B.weak_out b ~a ~b:b'
      | I_intra (strong, a, b', line) ->
        let a = node line a and b' = node line b' in
        if strong then B.intra_strong b ~a ~b:b' else B.intra_weak b ~a ~b:b'
      | I_input (strong, a, b', line) ->
        let a = node line a and b' = node line b' in
        if strong then B.input_strong b ~a ~b:b' else B.input_weak b ~a ~b:b'
      | I_log (sname, ops, line) ->
        B.log b ~sched:(sched line sname) (List.map (node line) ops))
    items;
  B.seal b

let parse src =
  let st = { toks = lex src } in
  build (parse_items st [])

let parse_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  parse src

(* A bare conflict specification, for command lines ([compgen --conflict]).
   [explicit] is rejected: its pairs reference node names, which do not
   exist outside a history description. *)
let spec_of_string src =
  let st = { toks = lex src } in
  let spec =
    match parse_spec st 1 with
    | Simple c -> c
    | Explicit_names (_, line) ->
      fail line "explicit specifications reference nodes of a history and cannot stand alone"
  in
  (match st.toks with
  | [] -> ()
  | { line; _ } :: _ -> fail line "trailing input after conflict specification");
  spec

(* ------------------------------------------------------------------ *)
(* Printer                                                             *)
(* ------------------------------------------------------------------ *)

let node_name id = Fmt.str "n%d" id

let print_spec h ppf = function
  | Conflict.Rw -> Fmt.string ppf "rw"
  | Conflict.Never -> Fmt.string ppf "never"
  | Conflict.Always -> Fmt.string ppf "always"
  | Conflict.Same_item -> Fmt.string ppf "same-item"
  | Conflict.Table pairs ->
    Fmt.pf ppf "table(%a)"
      Fmt.(list ~sep:(any ",") (pair ~sep:(any "/") string string))
      pairs
  | Conflict.Explicit pairs ->
    ignore h;
    Fmt.pf ppf "explicit(%a)"
      Fmt.(
        list ~sep:(any ",")
          (pair ~sep:(any "/") (using node_name string) (using node_name string)))
      pairs
  | Conflict.Adt f -> Adt.pp ppf f

let print ppf h =
  let sname s = (History.schedule h s).History.sname in
  (* Schedules with Explicit specs reference nodes; we print them as
     "never" first and rely on... instead: print explicit specs anyway —
     the parser rejects them; documented limitation, printed for humans. *)
  List.iter
    (fun (s : History.schedule) ->
      Fmt.pf ppf "schedule %s conflict %a@." s.History.sname (print_spec h)
        s.History.conflict)
    (History.schedules h);
  for i = 0 to History.n_nodes h - 1 do
    let n = History.node h i in
    match (n.History.parent, n.History.sched) with
    | None, Some s ->
      Fmt.pf ppf "root %s @@ %s %a@." (node_name i) (sname s) Label.pp n.History.label
    | Some p, Some s ->
      Fmt.pf ppf "tx %s @@ %s parent %s %a@." (node_name i) (sname s) (node_name p)
        Label.pp n.History.label
    | Some p, None ->
      Fmt.pf ppf "leaf %s parent %s %a@." (node_name i) (node_name p) Label.pp
        n.History.label
    | None, None -> assert false
  done;
  for i = 0 to History.n_nodes h - 1 do
    let n = History.node h i in
    Repro_order.Rel.iter
      (fun a b ->
        if Repro_order.Rel.mem a b n.History.intra_strong then
          Fmt.pf ppf "intra! : %s < %s@." (node_name a) (node_name b)
        else Fmt.pf ppf "intra : %s < %s@." (node_name a) (node_name b))
      n.History.intra_weak
  done;
  List.iter
    (fun (s : History.schedule) ->
      let is_root n = History.is_root h n in
      Repro_order.Rel.iter
        (fun a b ->
          if is_root a && is_root b then
            if Repro_order.Rel.mem a b s.History.strong_in then
              Fmt.pf ppf "input! : %s < %s@." (node_name a) (node_name b)
            else Fmt.pf ppf "input : %s < %s@." (node_name a) (node_name b))
        s.History.weak_in;
      if s.History.log <> [] then
        Fmt.pf ppf "log %s : %a@." s.History.sname
          Fmt.(list ~sep:(any " ") (using node_name string))
          s.History.log;
      Repro_order.Rel.iter
        (fun a b ->
          if Repro_order.Rel.mem a b s.History.strong_out then
            Fmt.pf ppf "order! %s : %s < %s@." s.History.sname (node_name a) (node_name b)
          else Fmt.pf ppf "order %s : %s < %s@." s.History.sname (node_name a) (node_name b))
        s.History.weak_out)
    (History.schedules h)

let to_string h = Fmt.str "%a" print h
