(** A textual description language for composite executions, so the checker
    works as a standalone tool on files.

    Grammar (['#'] starts a comment; newlines are insignificant):

    {v
    history  := item*
    item     := "schedule" NAME "conflict" spec
              | "root" NAME "@" NAME label
              | "tx"   NAME "@" NAME "parent" NAME label
              | "leaf" NAME "parent" NAME label
              | "order"  NAME ":" NAME "<" NAME      # weak output pair
              | "order!" NAME ":" NAME "<" NAME      # strong output pair
              | "intra"  ":" NAME "<" NAME           # weak intra-transaction
              | "intra!" ":" NAME "<" NAME           # strong intra-transaction
              | "input"  ":" NAME "<" NAME           # weak root input order
              | "input!" ":" NAME "<" NAME           # strong root input order
              | "log" NAME ":" NAME*                 # execution log of a schedule
    spec     := "rw" | "never" | "always" | "same-item"
              | "counter" | "queue" | "set" | "escrow"
              | "table" "(" [NAME "/" NAME ("," NAME "/" NAME)*] ")"
              | "explicit" "(" [NAME "/" NAME ("," NAME "/" NAME)*] ")"
              | "adt" "(" [class ("," class)*] [";" [rule ("," rule)*]] ")"
    class    := NAME "=" NAME ("/" NAME)*          # class = member ops
    rule     := NAME "/" NAME "=" cond             # conflicting class pair
    cond     := "always" | "item" | "args" | "range"
    label    := NAME [ "(" [ARG ("," ARG)*] ")" ]
    v}

    Node and schedule [NAME]s are arbitrary identifiers
    ([A-Za-z0-9_.'-]+); a node must be declared before it is referenced.
    In an [explicit] conflict specification the names refer to nodes, which
    therefore must be declared before the schedule — in printed output the
    specification is emitted after all nodes instead.  Note that [explicit]
    specs have no label-level meaning: runtime components that only see
    labels — the semantic lock tables of {!Repro_runtime.Lock} — fall back
    to treating {e every} pair as conflicting and emit a one-time
    [Validate] warning on stderr when they do (see
    {!Repro_model.Conflict.probe_labels}).

    [counter], [queue], [set] and [escrow] are the canonical ADT
    commutativity families of {!Repro_model.Adt}; [adt(...)] declares a
    custom family: operation classes ([class]) and symmetric conflicting
    class pairs ([rule]), each guarded by an argument condition — [always]
    (unconditional), [item] (same first argument), [args] (same first
    argument and intersecting remaining arguments), [range] (same first
    argument and overlapping numeric intervals from arguments 2 and 3).
    Class pairs without a rule commute; operation names outside every
    class conflict pessimistically with anything sharing their item.

    Example:

    {v
    schedule S conflict rw
    root T1 @ S T1
    root T2 @ S T2
    leaf a parent T1 r(x)
    leaf b parent T2 w(x)
    log S: a b
    v} *)

type error = { line : int; message : string }

exception Parse_error of error

val pp_error : Format.formatter -> error -> unit

val parse : string -> Repro_model.History.t
(** Parse a history description.  Raises {!Parse_error} on syntax or
    reference errors, [Invalid_argument] when the builder rejects the
    structure (see {!Repro_model.History.Builder.seal}). *)

val parse_file : string -> Repro_model.History.t

val spec_of_string : string -> Repro_model.Conflict.spec
(** Parse a bare conflict specification ([spec] in the grammar), for
    command lines such as [compgen --conflict].  Rejects [explicit] — its
    pairs reference nodes of a history — and trailing input.  Raises
    {!Parse_error}. *)

val print : Format.formatter -> Repro_model.History.t -> unit
(** Print a history in the language.  Node names are [n<id>]; the output
    includes every schedule (with its conflict specification), node, intra
    order, root input order, log, and the full weak/strong output orders, so
    [parse (print h)] reconstructs an equivalent history (same verdicts,
    same relations). *)

val to_string : Repro_model.History.t -> string
