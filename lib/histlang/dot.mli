(** Graphviz (DOT) export of composite executions.

    Two views:

    - {!forest}: the computational forest — execution-tree edges solid,
      nodes clustered by the schedule they are transactions of, leaves as
      boxes; optionally overlaid with the observed order (dashed red
      edges), which makes reduction failures visually obvious;
    - {!invocation_graph}: the schedules and their invocation edges with
      levels (Defs. 7–9).

    Render with e.g. [dot -Tsvg]. *)

open Repro_model

val forest :
  ?obs:Repro_order.Rel.t ->
  ?highlight_nodes:Repro_order.Ids.Int_set.t ->
  ?highlight_edges:(Repro_order.Ids.id * Repro_order.Ids.id) list ->
  ?annotate:(Repro_order.Ids.id -> string option) ->
  History.t ->
  string
(** [forest ?obs h] is a DOT digraph of the execution trees; when [obs] is
    given, its pairs are drawn as dashed constraint edges (the transitive
    reduction, so trees stay readable).

    Forensic decorations, all off by default: [highlight_nodes] draw with a
    bold red border (keeping their schedule fill), [highlight_edges] as
    solid bold red non-constraint edges — a witness cycle, typically — and
    [annotate] appends an extra label line to the nodes it is [Some] for.
    An [obs] pair also listed in [highlight_edges] is drawn once, bold. *)

val invocation_graph : History.t -> string
