open Repro_order
open Repro_model

let root_of h n =
  let rec climb n = match History.parent h n with None -> n | Some p -> climb p in
  climb n

let flat_csr h =
  let pulled =
    List.fold_left
      (fun acc (s : History.schedule) ->
        Rel.fold
          (fun o o' acc ->
            if
              History.is_leaf h o && History.is_leaf h o'
              && History.conflicts h s.History.sid o o'
            then begin
              let r = root_of h o and r' = root_of h o' in
              if r <> r' then Rel.add r r' acc else acc
            end
            else acc)
          s.History.weak_out acc)
      Rel.empty (History.schedules h)
  in
  let root_inputs =
    List.fold_left
      (fun acc r ->
        match History.sched_of_tx h r with
        | Some s ->
          Rel.union acc
            (Rel.restrict
               ~keep:(fun n -> History.is_root h n)
               (History.schedule h s).History.weak_in)
        | None -> acc)
      Rel.empty (History.roots h)
  in
  Rel.is_acyclic (Rel.union pulled root_inputs)

let llsr h =
  match Shapes.classify h with
  | Shapes.Stack chain ->
    (* Bottom-up; [pull] accumulates every ordering established at lower
       levels, lifted to the current level's transactions. *)
    let bottom_up = List.rev chain in
    let rec go pull = function
      | [] -> true
      | sid :: rest ->
        let s = History.schedule h sid in
        let level_rel =
          Rel.union (Ser.serialization_order h sid) (Rel.union s.History.weak_in pull)
        in
        if not (Rel.is_acyclic level_rel) then false
        else begin
          let lifted =
            Rel.fold
              (fun t t' acc ->
                let p = History.parent_tx h t and p' = History.parent_tx h t' in
                if p <> p' && p <> t then Rel.add p p' acc else acc)
              level_rel Rel.empty
          in
          go lifted rest
        end
    in
    go Rel.empty bottom_up
  | _ -> invalid_arg "Classic.llsr: not a stack"

let mlsr h =
  match Shapes.classify h with
  | Shapes.Stack chain ->
    List.for_all (fun sid -> Ser.cc h sid) chain
    &&
    let root_of_tx t =
      let rec climb n = match History.parent h n with None -> n | Some p -> climb p in
      climb t
    in
    let lifted =
      List.fold_left
        (fun acc sid ->
          Rel.fold
            (fun t t' acc ->
              let r = root_of_tx t and r' = root_of_tx t' in
              if r <> r' then Rel.add r r' acc else acc)
            (Ser.serialization_order h sid) acc)
        Rel.empty chain
    in
    let root_inputs =
      match chain with
      | top :: _ ->
        Rel.restrict ~keep:(History.is_root h) (History.schedule h top).History.weak_in
      | [] -> Rel.empty
    in
    Rel.is_acyclic (Rel.union lifted root_inputs)
  | _ -> invalid_arg "Classic.mlsr: not a stack"

let opsr h =
  match Shapes.classify h with
  | Shapes.Stack chain ->
    (* Real time is the bottom schedule's leaf log; a transaction's span is
       the interval covered by its descendant leaves. *)
    let bottom = List.nth chain (List.length chain - 1) in
    let log = (History.schedule h bottom).History.log in
    let pos = Hashtbl.create 64 in
    List.iteri (fun i o -> Hashtbl.replace pos o i) log;
    let span t =
      let open Repro_order.Ids in
      Int_set.fold
        (fun n acc ->
          match Hashtbl.find_opt pos n with
          | None -> acc
          | Some i -> (
            match acc with
            | None -> Some (i, i)
            | Some (lo, hi) -> Some (min lo i, max hi i)))
        (History.descendants h t) None
    in
    log <> []
    && List.for_all
         (fun sid ->
           let s = History.schedule h sid in
           let txs = Repro_order.Ids.Int_set.elements s.History.transactions in
           let precedes =
             List.fold_left
               (fun acc t ->
                 List.fold_left
                   (fun acc t' ->
                     if t = t' then acc
                     else
                       match (span t, span t') with
                       | Some (_, hi), Some (lo, _) when hi < lo -> Rel.add t t' acc
                       | _ -> acc)
                   acc txs)
               Rel.empty txs
           in
           Rel.is_acyclic
             (Rel.union (Ser.serialization_order h sid)
                (Rel.union s.History.weak_in precedes)))
         chain
  | _ -> invalid_arg "Classic.opsr: not a stack"

let accepted_by ?compc h =
  let shape = Shapes.classify h in
  let base = [ ("FlatCSR", flat_csr h) ] in
  let base =
    match shape with
    | Shapes.Stack _ -> base @ [ ("LLSR", llsr h); ("MLSR", mlsr h); ("OPSR", opsr h) ]
    | _ -> base
  in
  let base =
    match Special.check_matching h with
    | Some (name, verdict) -> base @ [ (name, verdict) ]
    | None -> base
  in
  let compc =
    match compc with Some v -> v | None -> Repro_core.Compc.is_correct h
  in
  base @ [ ("Comp-C", compc) ]
