(** Classical multilevel correctness criteria, for the containment
    comparisons of Sections 1 and 4.

    The paper positions Comp-C against three earlier notions and claims all
    are proper subsets of SCC (hence of Comp-C): level-by-level
    serializability (LLSR, [We91]), multilevel serializability, and
    order-preserving serializability (OPSR, [BBG89]).  These implementations
    target stack configurations — the setting in which the classical notions
    are defined — and are exercised by experiment E8.

    Operational definitions used here (bottom schedule first):

    - {b Flat CSR}: forget all intermediate semantics; pull every leaf-level
      conflict straight up to the roots and require acyclicity together with
      the root input orders.  The classical page-level serializability a
      monolithic scheduler would enforce.
    - {b LLSR}: level by level, the serialization order of each schedule
      joined with {e every} conflict pulled up from the level below (no
      commutativity-based forgetting — the "conflicts at one level must
      also conflict at all lower levels" regime) and the schedule's weak
      input order must be acyclic.
    - {b MLSR} (multilevel serializability, [Wei91]): every schedule is
      conflict consistent {e and} one serial order of the roots is
      compatible with every level's serialization order lifted to the
      roots (acyclicity of the union of the lifted orders with the root
      input orders).  Sits strictly between LLSR and SCC: unlike LLSR it
      collapses intra-root interference on the way up, unlike SCC it
      cannot forget a lower level's cross-root orders.
    - {b OPSR}: each schedule must be conflict consistent {e and} order
      preserving: its serialization order must also respect the real-time
      non-overlap order of its transactions, where a transaction's span is
      the interval its descendant leaves occupy in the bottom schedule's
      execution log (the classical [BBG89] notion). *)

open Repro_model

val flat_csr : History.t -> bool

val llsr : History.t -> bool
(** Raises [Invalid_argument] when the history is not a stack. *)

val mlsr : History.t -> bool
(** Raises [Invalid_argument] when the history is not a stack. *)

val opsr : History.t -> bool
(** Raises [Invalid_argument] when the history is not a stack, and is
    [false] when the bottom schedule has no execution log (real time is
    unknown). *)

val accepted_by : ?compc:bool -> History.t -> (string * bool) list
(** All applicable criteria with their verdicts (for reports): flat CSR;
    LLSR, MLSR and OPSR on stacks; SCC/FCC/JCC when the shape matches; and
    Comp-C.  [compc] supplies an already-decided Comp-C verdict (a caller
    with an analysis session has one) so the report does not re-run the
    pipeline; when absent, {!Repro_core.Compc.is_correct} runs. *)
