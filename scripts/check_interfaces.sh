#!/bin/sh
# Interface-coverage gate: every library module must ship an explicit
# interface.  Implementations without one leak their whole namespace and
# make the layering (model -> core/engine -> consumers) unenforceable,
# so CI fails when a lib/**/*.ml has no matching .mli.
set -eu

cd "$(dirname "$0")/.."

missing=0
for ml in $(find lib -name '*.ml' | sort); do
  if [ ! -f "${ml}i" ]; then
    echo "missing interface: ${ml}i" >&2
    missing=$((missing + 1))
  fi
done

if [ "$missing" -gt 0 ]; then
  echo "error: $missing library module(s) without an .mli" >&2
  exit 1
fi
echo "ok: every lib/**/*.ml has a matching .mli"
