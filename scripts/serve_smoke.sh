#!/usr/bin/env bash
# End-to-end smoke for the compserve daemon: STREAMS concurrent streams
# over a Unix socket must reproduce compcheck --monitor's per-prefix
# verdicts file by file, the admin plane must answer metrics/health/slow
# scrapes from the live daemon, SIGTERM must drain cleanly (exit 0,
# every queued request answered), and the traced daemon must leave a
# spans/1 dump with the full decode→queue→engine→encode tree.  Run from
# the repository root after `dune build`; binaries are taken from
# _build, not `dune exec`, so the daemon and the client never contend
# for the build lock.
set -euo pipefail

BIN=${BIN:-"$PWD/_build/default/bin"}
STREAMS=${STREAMS:-8}
DIR=$(mktemp -d)
trap 'rm -rf "$DIR"' EXIT
SOCK="$DIR/serve.sock"

for i in $(seq 1 "$STREAMS"); do
  # Mixed shapes and seeds: some streams reject on a prefix, some accept
  # through the whole file — parity must hold in both regimes.
  shape=$([ $((i % 2)) -eq 0 ] && echo stack || echo general)
  "$BIN/compgen.exe" --shape "$shape" --levels 2 --roots 4 --seed "$i" \
    > "$DIR/h$i.ct"
done

"$BIN/compserve.exe" --socket "$SOCK" --shards 4 --window 8 \
  --spans "$DIR/spans.json" --slow-ms 0 \
  2> "$DIR/daemon.log" &
DPID=$!
for _ in $(seq 1 100); do [ -S "$SOCK" ] && break; sleep 0.1; done
if ! [ -S "$SOCK" ]; then
  echo "daemon never bound $SOCK" >&2
  cat "$DIR/daemon.log" >&2
  exit 1
fi

cd "$DIR"
client_rc=0
# --trace makes the client mint a trace context per append, so the
# daemon's span dump below holds the cross-process trees.
"$BIN/compserve.exe" --connect "$SOCK" --trace client_trace.json h*.ct \
  > client.out || client_rc=$?
# exit 1 just means some stream rejected; 2+ is a protocol/usage failure
test "$client_rc" -le 1
python3 -c 'import json; json.load(open("client_trace.json"))'

for i in $(seq 1 "$STREAMS"); do
  grep "^h$i.ct: prefix" client.out | sed "s/^h$i\.ct: //" > "served.$i"
  mon_rc=0
  "$BIN/compcheck.exe" --monitor "h$i.ct" > "mon_raw.$i" || mon_rc=$?
  test "$mon_rc" -le 1
  grep "^prefix" "mon_raw.$i" > "mon.$i" || true
  if ! diff "served.$i" "mon.$i"; then
    echo "verdict divergence on stream h$i.ct" >&2
    exit 1
  fi
done

# Admin plane against the still-live daemon: a Prometheus scrape that
# parses (TYPE headers, the sharded serve.* counters), a healthy health
# document, and — with --slow-ms 0 — a slow log holding every append.
"$BIN/compserve.exe" --connect "$SOCK" --admin metrics > metrics.prom
grep -q '^# TYPE serve_append counter' metrics.prom
grep -q '^# TYPE serve_append_wall_s histogram' metrics.prom
python3 - <<'EOF'
seen = set()
for line in open("metrics.prom"):
    line = line.rstrip("\n")
    if not line:
        continue
    if line.startswith("# TYPE "):
        name, kind = line.split()[2:4]
        assert kind in ("counter", "gauge", "histogram"), line
        seen.add(name)
        continue
    assert not line.startswith("#"), f"unexpected comment: {line}"
    series, value = line.rsplit(" ", 1)
    float(value)
    base = series.split("{", 1)[0]
    for suffix in ("_bucket", "_sum", "_count"):
        if base.endswith(suffix):
            base = base[: -len(suffix)]
    assert base in seen, f"sample before its TYPE header: {line}"
EOF
"$BIN/compserve.exe" --connect "$SOCK" --admin health > health.json
python3 - <<'EOF'
import json
d = json.load(open("health.json"))
assert d["schema"] == "compserve-health/1" and d["status"] == "ok"
assert d["protocol"] == 2 and d["shards"] == 4
EOF
"$BIN/compserve.exe" --connect "$SOCK" --admin slow > slow.json
python3 - <<'EOF'
import json
d = json.load(open("slow.json"))
assert d["schema"] == "compserve-slow/1"
assert d["count"] == len(d["events"]) > 0, "slow-ms 0 must log every append"
EOF
"$BIN/compserve.exe" --connect "$SOCK" --admin stats > stats.json
python3 - <<'EOF'
import json
d = json.load(open("stats.json"))
cov = d["coverage"]
assert cov["schema"] == "coverage/1"
assert cov["points"]["serve.append"] > 0
EOF

kill -TERM "$DPID"
drain_rc=0
wait "$DPID" || drain_rc=$?
test "$drain_rc" -eq 0
grep -q "draining" daemon.log
grep -q "drained" daemon.log

# The drained daemon wrote its span dump: every traced append must form
# the connected tree decode → queue_wait → {engine.append, encode}.
python3 - <<'EOF'
import json
d = json.load(open("spans.json"))
assert d["schema"] == "spans/1"
by_trace = {}
for s in d["spans"]:
    by_trace.setdefault(s["trace"], {})[s["name"]] = s
assert by_trace, "traced daemon recorded no spans"
trees = 0
for trace, spans in by_trace.items():
    if "serve.decode" not in spans:
        continue  # open/close frames trace only the decode side
    if "serve.queue_wait" not in spans:
        continue
    dec = spans["serve.decode"]
    qw = spans["serve.queue_wait"]
    eng = spans["engine.append"]
    enc = spans["serve.encode"]
    assert qw["parent"] == dec["span"], (trace, spans)
    assert eng["parent"] == qw["span"], (trace, spans)
    assert enc["parent"] == dec["span"], (trace, spans)
    assert eng["labels"]["path"] in ("initial", "fast", "delta", "kernel", "full")
    trees += 1
assert trees > 0, "no append span tree in the daemon dump"
print(f"span dump OK: {trees} connected append trees")
EOF

echo "serve smoke OK: $STREAMS streams, verdict parity, admin plane, clean drain"
