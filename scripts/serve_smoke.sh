#!/usr/bin/env bash
# End-to-end smoke for the compserve daemon: STREAMS concurrent streams
# over a Unix socket must reproduce compcheck --monitor's per-prefix
# verdicts file by file, and SIGTERM must drain cleanly (exit 0, every
# queued request answered).  Run from the repository root after
# `dune build`; binaries are taken from _build, not `dune exec`, so the
# daemon and the client never contend for the build lock.
set -euo pipefail

BIN=${BIN:-"$PWD/_build/default/bin"}
STREAMS=${STREAMS:-8}
DIR=$(mktemp -d)
trap 'rm -rf "$DIR"' EXIT
SOCK="$DIR/serve.sock"

for i in $(seq 1 "$STREAMS"); do
  # Mixed shapes and seeds: some streams reject on a prefix, some accept
  # through the whole file — parity must hold in both regimes.
  shape=$([ $((i % 2)) -eq 0 ] && echo stack || echo general)
  "$BIN/compgen.exe" --shape "$shape" --levels 2 --roots 4 --seed "$i" \
    > "$DIR/h$i.ct"
done

"$BIN/compserve.exe" --socket "$SOCK" --shards 4 --window 8 \
  2> "$DIR/daemon.log" &
DPID=$!
for _ in $(seq 1 100); do [ -S "$SOCK" ] && break; sleep 0.1; done
if ! [ -S "$SOCK" ]; then
  echo "daemon never bound $SOCK" >&2
  cat "$DIR/daemon.log" >&2
  exit 1
fi

cd "$DIR"
client_rc=0
"$BIN/compserve.exe" --connect "$SOCK" h*.ct > client.out || client_rc=$?
# exit 1 just means some stream rejected; 2+ is a protocol/usage failure
test "$client_rc" -le 1

for i in $(seq 1 "$STREAMS"); do
  grep "^h$i.ct: prefix" client.out | sed "s/^h$i\.ct: //" > "served.$i"
  mon_rc=0
  "$BIN/compcheck.exe" --monitor "h$i.ct" > "mon_raw.$i" || mon_rc=$?
  test "$mon_rc" -le 1
  grep "^prefix" "mon_raw.$i" > "mon.$i" || true
  if ! diff "served.$i" "mon.$i"; then
    echo "verdict divergence on stream h$i.ct" >&2
    exit 1
  fi
done

kill -TERM "$DPID"
drain_rc=0
wait "$DPID" || drain_rc=$?
test "$drain_rc" -eq 0
grep -q "draining" daemon.log
grep -q "drained" daemon.log
echo "serve smoke OK: $STREAMS streams, verdict parity, clean drain"
